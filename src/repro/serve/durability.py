"""Session durability: write-ahead op logs, event cursors, replay rings.

This module is what makes a preference-server session survive its process.
Three pieces, all built on the crash-safety contract of
:mod:`repro.faults.journal` (per-line append+flush, torn-tail-tolerant
loading):

* :class:`SessionJournal` — a per-session write-ahead op log under
  ``<state-dir>/sessions/<name>.jsonl``.  The header records everything
  needed to rebuild the session's ``(spec, seed)`` pair (scenario name +
  the dotted-path overrides it was opened with); every mutating op
  (``probe``/``report``/``select``/``rselect``/``election``/``run``) is
  appended *before* it executes and before its result frame is sent, with
  a monotonic ``seq``.  A restarted server replays the journaled ops in
  order against a freshly ``prepare()``-d context — the ops are
  deterministic functions of session state, so the rebuilt session is
  bit-identical to the never-crashed one.
* :class:`EventRing` — the bounded replay buffer behind ``(session, seq)``
  event cursors.  Every published event is stamped with the session's next
  seq and retained until it falls off the ring; ``subscribe(from_seq=)``
  backfills from here, and a cursor that has fallen out (or points past
  the recovered high-water mark) yields a typed ``gap`` so the client
  knows to resnapshot instead of silently missing frames.
* :class:`SessionCheckpoint` — bounded-time recovery.  Replaying a
  lifetime of ops is O(lifetime); a checkpoint pickles the session's full
  :class:`~repro.scenarios.engine.PreparedRun` (board, oracle memo +
  budgets, RNG stream state) behind a checksummed header, written
  atomically (tmp → fsync → read-back verify → rename), after which the
  journal is **compacted** to the suffix past the checkpoint —
  recovery becomes O(checkpoint + tail).  A torn or corrupt checkpoint
  fails its checksum on load and recovery falls back to full replay with
  a :class:`DurabilityWarning`; it can never produce wrong state.
* :func:`clear_stale_socket` — UNIX-socket hygiene for restarts: a socket
  file left by a SIGKILLed predecessor is detected (nobody accepts on it)
  and removed, while a *live* server's socket raises instead of being
  stolen.

Disk faults (injected via the ``journal.append`` / ``journal.fsync`` /
``checkpoint.write`` sites of :mod:`repro.faults`) degrade, never corrupt:
a failed append quarantines the log and the session continues ephemeral; a
failed checkpoint write keeps the full journal; a failed compaction keeps
the full journal.  Eviction and explicit close archive a session's files
to ``sessions/<name>.evicted/`` (:func:`archive_session_state`), which the
recovery scan skips.

Event-seq continuity across a crash: the journal also records an
``events`` high-water mark (``next_seq``) *before* a publisher tick's
frames are sent.  On recovery the ring resumes numbering from that mark,
so a seq a client has actually seen is never reissued for a different
event — at worst the resuming cursor lands in the (empty) recovered ring
and the client receives a ``gap``.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import pickle
import re
import socket
import time
from pathlib import Path
from threading import Lock
from typing import Any

from repro.errors import ExperimentError
from repro.faults.journal import AppendOnlyLog, parse_records
from repro.faults.runtime import disk_fault_gate

__all__ = [
    "CheckpointError",
    "DurabilityWarning",
    "EventRing",
    "SessionCheckpoint",
    "SessionJournal",
    "archive_session_state",
    "clear_stale_socket",
    "scan_state_dir",
    "session_archive_dir",
    "session_checkpoint_path",
    "session_journal_path",
    "session_ordinal",
]

_JOURNAL_VERSION = 1
_CHECKPOINT_VERSION = 1


class DurabilityWarning(UserWarning):
    """A durability degradation the server survived.

    Emitted (never raised) when the durable path falls back without losing
    correctness: a journal append failed and the session continues
    ephemeral, a checkpoint could not be written and the full op log is
    kept, a checkpoint failed its checksum and recovery fell back to full
    replay, or a state-dir entry could not be recovered and boot skipped
    it.  Typed so tests and operators can filter them precisely
    (``-W error::DurabilityWarning`` turns any silent degradation into a
    failure).
    """


class CheckpointError(ExperimentError):
    """A session checkpoint failed verification (torn, corrupt, or stale).

    Raised by :meth:`SessionCheckpoint.load`/:meth:`SessionCheckpoint.restore`
    when the header is unreadable, the payload length or checksum disagrees
    with the header, or the pickle cannot be rebuilt.  Always recoverable:
    the caller falls back to full journal replay.
    """

#: Ops that must be journaled before execution (everything that can mutate
#: session state or consume shared randomness; reads are not logged).
JOURNALED_OPS = frozenset(
    {"probe", "report", "select", "rselect", "election", "run"}
)


def session_journal_path(state_dir: Path | str, name: str) -> Path:
    """Where session ``name``'s op log lives under ``state_dir``."""
    return Path(state_dir) / "sessions" / f"{name}.jsonl"


def session_checkpoint_path(state_dir: Path | str, name: str) -> Path:
    """Where session ``name``'s state checkpoint lives under ``state_dir``."""
    return Path(state_dir) / "sessions" / f"{name}.ckpt"


def session_archive_dir(state_dir: Path | str, name: str) -> Path:
    """Where session ``name``'s files are archived on eviction/close."""
    return Path(state_dir) / "sessions" / f"{name}.evicted"


def scan_state_dir(state_dir: Path | str) -> list[Path]:
    """All session journals under ``state_dir``, in stable name order.

    Only live ``*.jsonl`` files qualify: checkpoints (``*.ckpt``),
    quarantined logs (``*.jsonl.broken``), atomic-write temporaries
    (``*.tmp``) and archived sessions (``*.evicted/`` directories) all
    fail the glob, so eviction and degradation never resurrect state.
    """
    sessions = Path(state_dir) / "sessions"
    if not sessions.is_dir():
        return []
    return sorted(path for path in sessions.glob("*.jsonl") if path.is_file())


def archive_session_state(state_dir: Path | str, name: str) -> Path | None:
    """Move session ``name``'s journal + checkpoint into its archive dir.

    Called on eviction and explicit close instead of deletion: the files
    stop being recoverable (the ``*.jsonl`` scan skips directories) but
    stay on disk for post-mortem, under
    ``<state-dir>/sessions/<name>.evicted/``.  Returns the archive
    directory, or ``None`` when the session left nothing behind.  A name
    reused after an earlier archive overwrites the earlier files
    (last-wins, like a re-run journal).
    """
    sessions = Path(state_dir) / "sessions"
    archive = session_archive_dir(state_dir, name)
    moved = False
    for candidate in (
        sessions / f"{name}.jsonl",
        sessions / f"{name}.ckpt",
        sessions / f"{name}.jsonl.tmp",
        sessions / f"{name}.ckpt.tmp",
        sessions / f"{name}.jsonl.broken",
    ):
        if candidate.is_file():
            archive.mkdir(parents=True, exist_ok=True)
            os.replace(candidate, archive / candidate.name)
            moved = True
    return archive if moved else None


def _fsync_dir(path: Path) -> None:
    """Flush a directory entry (the rename half of an atomic write)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class SessionCheckpoint:
    """A checksummed snapshot of one session's full protocol state.

    On disk: one JSON header line (session identity, the op seq the state
    includes, the event-ring high-water mark, payload length and sha256)
    followed by the raw pickle of the session's
    :class:`~repro.scenarios.engine.PreparedRun` — board channels, oracle
    memo + budgets, player pool, RNG stream state, everything an op can
    have touched.  Pickling the prepared run whole (rather than exporting
    piecemeal) is what makes checkpointed recovery *bit-identical*: the
    restored object graph is exactly the one the worker mutated.

    Writes are atomic and self-verifying: payload → ``<path>.tmp`` →
    flush + fsync → **read back and re-verify the checksum** → rename over
    ``<path>`` → fsync the directory.  The read-back means a checkpoint
    that an injected fault corrupted *in flight* is caught before the
    rename, so the previous checkpoint (and the uncompacted journal)
    stays authoritative; a crash at any point leaves either the old file
    or the new file, never a torn one under the live name.  Loads verify
    header shape, payload length and checksum and raise
    :class:`CheckpointError` on any disagreement — the recovery path's
    cue to fall back to full replay.
    """

    def __init__(self, path: Path, header: dict[str, Any], payload: bytes) -> None:
        self.path = Path(path)
        self.header = header
        self.payload = payload

    @property
    def op_seq(self) -> int:
        """Seq of the last journaled op included in this state (0 = none)."""
        return int(self.header.get("op_seq", 0))

    @property
    def events_next_seq(self) -> int:
        """Event-ring high-water mark at capture time."""
        return max(1, int(self.header.get("events_next_seq", 1)))

    @property
    def session(self) -> str:
        return str(self.header.get("session", ""))

    @classmethod
    def write(
        cls,
        path: Path | str,
        *,
        session: str,
        scenario: str,
        overrides: dict[str, Any] | None,
        seed: int,
        op_seq: int,
        events_next_seq: int,
        prepared: Any,
    ) -> "SessionCheckpoint":
        """Atomically persist ``prepared`` as the session's checkpoint.

        Raises :class:`OSError` (write/fsync failed, including injected
        ``checkpoint.write`` faults) or :class:`CheckpointError` (the
        read-back verification caught corruption); in both cases the
        previous checkpoint file is untouched and the caller keeps the
        full journal.
        """
        path = Path(path)
        payload = pickle.dumps(prepared, protocol=pickle.HIGHEST_PROTOCOL)
        header = {
            "kind": "checkpoint",
            "version": _CHECKPOINT_VERSION,
            "session": session,
            "scenario": scenario,
            "overrides": dict(overrides or {}),
            "seed": int(seed),
            "op_seq": int(op_seq),
            "events_next_seq": max(1, int(events_next_seq)),
            "payload_bytes": len(payload),
            "sha256": hashlib.sha256(payload).hexdigest(),
            "created_unix_time": time.time(),
        }
        data = json.dumps(header, separators=(",", ":")).encode("utf-8")
        data += b"\n" + payload
        action = disk_fault_gate("checkpoint.write")
        if action == "error":
            raise OSError(errno.EIO, f"injected I/O error writing {path}")
        if action == "enospc":
            raise OSError(errno.ENOSPC, f"injected ENOSPC writing {path}")
        if action == "short-write":
            data = data[: max(1, len(data) // 2)]
        elif action == "corrupt":
            # Flip one payload byte at the file layer: the in-memory
            # checksum in the header is pristine, so only read-back
            # verification can notice — exactly the path under test.
            flip = len(data) - 1
            data = data[:flip] + bytes([data[flip] ^ 0xFF])
        tmp = path.with_name(path.name + ".tmp")
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            with open(tmp, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            if action == "short-write":
                raise OSError(errno.EIO, f"injected short write on {path}")
            loaded = cls.load(tmp)  # read-back: catches in-flight corruption
        except (OSError, CheckpointError):
            tmp.unlink(missing_ok=True)
            raise
        os.replace(tmp, path)
        _fsync_dir(path.parent)
        return cls(path, loaded.header, loaded.payload)

    @classmethod
    def load(cls, path: Path | str) -> "SessionCheckpoint":
        """Read and verify a checkpoint; :class:`CheckpointError` if bad."""
        path = Path(path)
        try:
            raw = path.read_bytes()
        except OSError as error:
            raise CheckpointError(
                f"checkpoint {path} is unreadable: {error}"
            ) from error
        newline = raw.find(b"\n")
        if newline < 0:
            raise CheckpointError(f"checkpoint {path} has no header line")
        try:
            header = json.loads(raw[:newline])
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise CheckpointError(
                f"checkpoint {path} header is not valid JSON"
            ) from error
        if not isinstance(header, dict) or header.get("kind") != "checkpoint":
            raise CheckpointError(f"checkpoint {path} header has the wrong kind")
        if int(header.get("version", -1)) != _CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has unsupported version "
                f"{header.get('version')!r}"
            )
        payload = raw[newline + 1:]
        if len(payload) != int(header.get("payload_bytes", -1)):
            raise CheckpointError(
                f"checkpoint {path} payload is torn "
                f"({len(payload)} bytes, header says {header.get('payload_bytes')})"
            )
        if hashlib.sha256(payload).hexdigest() != header.get("sha256"):
            raise CheckpointError(f"checkpoint {path} fails its checksum")
        return cls(path, header, payload)

    def restore(self) -> Any:
        """Unpickle the captured :class:`PreparedRun` (the session state)."""
        try:
            return pickle.loads(self.payload)
        except Exception as error:  # noqa: BLE001 - any unpickle failure
            raise CheckpointError(
                f"checkpoint {self.path} payload cannot be rebuilt: {error}"
            ) from error

    def delete(self) -> None:
        self.path.unlink(missing_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SessionCheckpoint(path={str(self.path)!r}, "
            f"op_seq={self.op_seq}, payload={len(self.payload)}B)"
        )


def session_ordinal(name: str) -> int:
    """The numeric part of a server-allocated session name (``s7`` → 7).

    Used after recovery to restart the name counter past every recovered
    session, so new sessions never collide with replayed ones.  Names that
    do not match the server's ``s<N>`` pattern contribute 0.
    """
    match = re.fullmatch(r"s(\d+)", name)
    return int(match.group(1)) if match else 0


class SessionJournal:
    """Write-ahead op log for one session (crash-safe, torn-tail-tolerant).

    Use :meth:`create` for a fresh session and :meth:`load` to recover one;
    both leave the file open for appending.  Appends may come from two
    threads (op records from the session worker, event high-water marks
    from the server's publisher on the event loop), so writes are locked.
    """

    def __init__(
        self,
        path: Path,
        header: dict[str, Any],
        ops: list[tuple[int, str, dict[str, Any]]],
        events_next_seq: int,
    ) -> None:
        self.path = Path(path)
        self.header = header
        #: ``(seq, op, params)`` records recovered from the file, in order.
        self.recovered_ops = ops
        #: Event-seq high-water mark recovered from the file (>= 1).
        self.events_next_seq = max(1, int(events_next_seq))
        self._lock = Lock()
        self._log = AppendOnlyLog(path)
        self._last_events_mark = self.events_next_seq

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: Path | str,
        *,
        session: str,
        scenario: str,
        overrides: dict[str, Any] | None,
        seed: int,
        max_pending: int,
    ) -> "SessionJournal":
        """Start a fresh journal: write the header, return the open log.

        The header stores the *wire-level* session description (scenario
        name + dotted-path overrides, exactly what the ``open`` op carried)
        rather than a pickled spec: ``build_spec`` reconstructs the same
        :class:`~repro.scenarios.spec.ScenarioSpec` on recovery, and the
        file stays human-readable JSON end to end.
        """
        header = {
            "kind": "header",
            "version": _JOURNAL_VERSION,
            "session": session,
            "scenario": scenario,
            "overrides": dict(overrides or {}),
            "seed": int(seed),
            "max_pending": int(max_pending),
            "created_unix_time": time.time(),
        }
        journal = cls(Path(path), header, [], 1)
        journal._log.append(header)
        return journal

    @classmethod
    def load(cls, path: Path | str) -> "SessionJournal":
        """Recover a journal from disk, tolerating a torn final line.

        Returns the open journal with :attr:`recovered_ops` holding every
        fully-written op record in append order and :attr:`events_next_seq`
        at the recorded high-water mark.  A file without a valid header is
        rejected (:class:`~repro.errors.ExperimentError`) — the caller
        skips it rather than serving a session of unknown provenance.
        """
        path = Path(path)
        records = parse_records(path.read_text(encoding="utf-8"))
        if not records or records[0].get("kind") != "header":
            raise ExperimentError(
                f"session journal {path} has no valid header; cannot recover"
            )
        header = records[0]
        if int(header.get("version", -1)) != _JOURNAL_VERSION:
            raise ExperimentError(
                f"session journal {path} has unsupported version "
                f"{header.get('version')!r}"
            )
        ops: list[tuple[int, str, dict[str, Any]]] = []
        events_next_seq = 1
        for record in records[1:]:
            kind = record.get("kind")
            if kind == "op":
                ops.append(
                    (
                        int(record.get("seq", len(ops) + 1)),
                        str(record.get("op")),
                        dict(record.get("params") or {}),
                    )
                )
            elif kind == "events":
                events_next_seq = max(events_next_seq, int(record.get("next_seq", 1)))
        return cls(path, header, ops, events_next_seq)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    @property
    def flushes(self) -> int:
        return self._log.flushes

    @property
    def compacted_at_seq(self) -> int:
        """Highest op seq dropped by compaction (0 = never compacted).

        Ops at or below this seq live only inside the checkpoint; replay
        must start strictly after it, and :attr:`next_op_seq` must never
        reuse a seq from the compacted range.
        """
        return int(self.header.get("compacted_at_seq", 0))

    @property
    def next_op_seq(self) -> int:
        """The seq the next journaled op should use (monotonic, 1-based).

        Accounts for compaction: a journal whose tail is empty because
        every op moved into the checkpoint still hands out seqs past the
        compaction point, so op seqs stay unique across the session's
        whole lifetime.
        """
        last = self.recovered_ops[-1][0] if self.recovered_ops else 0
        return max(last, self.compacted_at_seq) + 1

    def record_op(self, seq: int, op: str, params: dict[str, Any]) -> None:
        """Append one op record (the write-ahead point: flushed before the
        op executes, so an acked op is always recoverable)."""
        with self._lock:
            if not self._log.closed:
                self._log.append(
                    {"kind": "op", "seq": int(seq), "op": op, "params": params}
                )

    def record_events_mark(self, next_seq: int) -> None:
        """Persist the event-seq high-water mark (before frames are sent).

        Idempotent per value: repeated marks at the same seq are skipped so
        a chatty publisher does not grow the file without new events.
        """
        next_seq = int(next_seq)
        with self._lock:
            if next_seq <= self._last_events_mark or self._log.closed:
                return
            self._last_events_mark = next_seq
            self._log.append({"kind": "events", "next_seq": next_seq})

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, upto_seq: int) -> int:
        """Drop journaled ops with ``seq <= upto_seq`` (they live in the
        checkpoint now); returns the number of tail ops retained.

        Only call after a checkpoint covering ``upto_seq`` has been
        *verified and renamed into place* — the compacted journal alone
        can no longer rebuild the session.  The rewrite is atomic (tmp +
        fsync + rename over the live file, directory fsynced), so a crash
        mid-compaction leaves either the full journal or the compacted
        one, and either recovers exactly: replay skips ops at or below
        the checkpoint's ``op_seq`` whether or not they are still in the
        file.  The new header records ``compacted_at_seq`` and the rewrite
        preserves the event-seq high-water mark.

        An injected ``journal.fsync`` fault (or any real :class:`OSError`)
        aborts the rewrite with the full journal untouched — losing a
        compaction is a missed optimisation, never lost state.
        """
        upto_seq = int(upto_seq)
        with self._lock:
            if self._log.closed:
                return 0
            records = parse_records(self.path.read_text(encoding="utf-8"))
            header = dict(self.header)
            header["compacted_at_seq"] = max(upto_seq, self.compacted_at_seq)
            mark = {"kind": "events", "next_seq": self._last_events_mark}
            tail = [
                record
                for record in records[1:]
                if record.get("kind") == "op"
                and int(record.get("seq", 0)) > upto_seq
            ]
            data = "".join(
                json.dumps(record, separators=(",", ":")) + "\n"
                for record in (header, mark, *tail)
            )
            tmp = self.path.with_name(self.path.name + ".tmp")
            action = disk_fault_gate("journal.fsync")
            try:
                with open(tmp, "w", encoding="utf-8") as handle:
                    handle.write(data)
                    handle.flush()
                    if action == "error":
                        raise OSError(
                            errno.EIO,
                            f"injected fsync failure compacting {self.path}",
                        )
                    os.fsync(handle.fileno())
            except OSError:
                tmp.unlink(missing_ok=True)
                raise
            # Swap the live file under the append handle: close, rename,
            # reopen in append mode on the new inode.  All under the lock,
            # so no op or events mark can land between close and reopen.
            flushes = self._log.flushes
            self._log.close()
            os.replace(tmp, self.path)
            _fsync_dir(self.path.parent)
            self._log = AppendOnlyLog(self.path)
            self._log.flushes = flushes
            self.header = header
            return len(tail)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._log.close()

    def delete(self) -> None:
        """Close and remove the file (the session is gone for good)."""
        self.close()
        self.path.unlink(missing_ok=True)

    def quarantine(self) -> Path:
        """Sideline an unappendable journal as ``<name>.jsonl.broken``.

        Called when a journal append hits a real disk fault: the session
        degrades to ephemeral, and the valid prefix is preserved under a
        name the recovery scan ignores (post-mortem evidence, never a
        half-trusted recovery source).  Returns the quarantine path.
        """
        self.close()
        broken = self.path.with_name(self.path.name + ".broken")
        try:
            os.replace(self.path, broken)
        except OSError:
            return self.path
        return broken

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SessionJournal(path={str(self.path)!r}, "
            f"ops={len(self.recovered_ops)}, "
            f"events_next_seq={self.events_next_seq})"
        )


class EventRing:
    """Bounded replay buffer assigning ``(session, seq)`` event cursors.

    :meth:`stamp` gives a frame the next monotonic seq and retains it;
    :meth:`replay` returns the retained frames at or after a cursor, plus
    the resume point when the cursor cannot be honoured — either because
    it fell off the ring (events evicted) or because it points past
    :attr:`next_seq` (a pre-crash cursor beyond the recovered high-water
    mark).  Both cases mean the subscriber missed frames it can never get
    back, which the server surfaces as a typed ``gap`` event.
    """

    def __init__(self, capacity: int = 1024, next_seq: int = 1) -> None:
        self.capacity = max(1, int(capacity))
        self.next_seq = max(1, int(next_seq))
        #: Frames dropped off the ring since construction.
        self.dropped = 0
        self._frames: list[dict[str, Any]] = []

    @property
    def oldest_seq(self) -> int:
        """Seq of the oldest retained frame (== ``next_seq`` when empty)."""
        return self._frames[0]["seq"] if self._frames else self.next_seq

    def __len__(self) -> int:
        return len(self._frames)

    def stamp(self, frame: dict[str, Any]) -> dict[str, Any]:
        """Assign the next seq to ``frame``, retain it, and return it."""
        frame["seq"] = self.next_seq
        self.next_seq += 1
        self._frames.append(frame)
        overflow = len(self._frames) - self.capacity
        if overflow > 0:
            del self._frames[:overflow]
            self.dropped += overflow
        return frame

    def replay(
        self, from_seq: int
    ) -> tuple[list[dict[str, Any]], int | None]:
        """Frames with ``seq >= from_seq``, plus a gap resume point.

        Returns ``(frames, resume_seq)``.  ``resume_seq`` is ``None`` when
        the cursor is fully honoured; otherwise it is the earliest seq the
        subscriber can actually resume from (the oldest retained frame, or
        ``next_seq`` for a future cursor) and ``frames`` holds whatever is
        still available from there.
        """
        from_seq = max(1, int(from_seq))
        if from_seq > self.next_seq:
            return [], self.next_seq
        if from_seq < self.oldest_seq:
            return list(self._frames), self.oldest_seq
        return [frame for frame in self._frames if frame["seq"] >= from_seq], None


def clear_stale_socket(path: Path | str) -> str:
    """Make way for binding a UNIX socket at ``path``.

    Returns ``"absent"`` (nothing there), ``"removed"`` (a dead socket file
    from a killed predecessor was unlinked) or raises :class:`OSError`
    (``EADDRINUSE``) when a live server still accepts connections on it —
    never steal a running server's socket.
    """
    path = Path(path)
    if not path.exists():
        return "absent"
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    probe.settimeout(0.5)
    try:
        probe.connect(str(path))
    except OSError:
        path.unlink(missing_ok=True)
        return "removed"
    finally:
        probe.close()
    raise OSError(
        errno.EADDRINUSE,
        f"socket {path} is in use by a live server; refusing to replace it",
    )
