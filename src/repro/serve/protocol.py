"""The preference server's wire protocol: newline-delimited JSON frames.

Every frame is one JSON object on one line (UTF-8, ``\\n``-terminated).
Three frame shapes exist:

* **request** — ``{"id": <int|str>, "op": <str>, "session": <str|null>,
  "params": {...}}``.  ``id`` is caller-chosen and echoed verbatim; every
  request gets exactly one response.  Session-scoped ops carry the session
  name; connection-scoped ops (``ping``, ``open``, ``sessions``,
  ``shutdown``) leave it out.
* **response** — ``{"id": ..., "ok": true, "result": {...}}`` on success,
  ``{"id": ..., "ok": false, "error": {"code", "type", "message"}}`` on
  failure.  ``code`` is a stable machine string (see :data:`ERROR_CODES`),
  ``type`` the Python exception class name, ``message`` the human text.
* **event** — ``{"event": <str>, "session": <str>, "seq": <int>, ...}``
  with **no** ``id``: unsolicited frames streamed to subscribers
  (``board-delta``, ``telemetry``, ``round-result``, ``degraded``,
  ``session-evicted``).  Clients demultiplex on the presence of ``id`` vs
  ``event``.  ``seq`` is the session-scoped event cursor assigned by the
  publisher's replay ring — ``subscribe(from_seq=)`` backfills missed
  frames from it.  Two synthetic frames carry no ring cursor: ``gap``
  (the requested cursor is no longer replayable; resume from
  ``resume_seq`` and resnapshot) and ``server-shutdown`` (connection
  scoped, broadcast during graceful shutdown).

Binary payloads (prediction matrices, report vectors) cross the wire as
``{"__ndarray__": <base64>, "dtype": ..., "shape": ...}`` objects via
:func:`encode_array`/:func:`decode_array` — JSON-clean, and exact (the
bytes are the array's C-order buffer, so decode → re-encode round-trips
bit-identically, which the bit-identity gates rely on).
"""

from __future__ import annotations

import base64
import json
from typing import Any

import numpy as np

from repro.errors import (
    BoardOwnershipError,
    BudgetExceededError,
    ConfigurationError,
    ConnectionLost,
    ExperimentError,
    InjectedCrash,
    LeaderElectionError,
    OracleTimeout,
    ProtocolError,
    ReproError,
)

__all__ = [
    "MAX_FRAME_BYTES",
    "Overloaded",
    "QuotaExceeded",
    "ServeError",
    "encode_frame",
    "decode_frame",
    "encode_array",
    "decode_array",
    "error_body",
    "error_frame",
    "ok_frame",
]

#: Upper bound on one frame, requests and responses alike.  Generous enough
#: for a full prediction matrix at the scales the registry ships, small
#: enough that a stray non-protocol client cannot balloon server memory.
MAX_FRAME_BYTES = 16 * 1024 * 1024


class ServeError(ReproError):
    """A server-side protocol violation with a stable wire error code.

    Raised for conditions that exist only at the serving layer — unknown
    session, unknown op, malformed request, overload shedding, admission
    control, eviction — as opposed to :class:`~repro.errors.ReproError`
    subclasses bubbling out of the protocol stack, which map to codes via
    :data:`ERROR_CODES`.  Subclasses that represent *transient* refusals
    set :attr:`retryable` (and a ``retry_after_s`` hint), which
    :func:`error_body` copies onto the wire so clients can back off and
    re-issue safely.
    """

    #: Whether re-issuing the identical request later can succeed; the
    #: request was refused *before* touching session state.
    retryable: bool = False
    #: Back-off hint in seconds for retryable refusals (``None`` otherwise).
    retry_after_s: float | None = None

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class Overloaded(ServeError):
    """A retryable shed: the server refused work it cannot queue right now.

    Raised when a session's pending-op queue or its event pipeline
    saturates.  The error frame carries ``retryable: true`` and a
    ``retry_after_s`` hint so well-behaved clients back off instead of
    hammering a struggling server — the response-side half of graceful
    degradation (the stream side is the replay ring: a shed subscriber
    reconnects and resumes from its cursor).
    """

    retryable = True

    def __init__(self, message: str, retry_after_s: float = 0.25) -> None:
        super().__init__("overloaded", message)
        self.retry_after_s = float(retry_after_s)


class QuotaExceeded(ServeError):
    """Admission control refused the request: a quota is exhausted.

    Two limits surface this code: the per-session op quota (a token
    bucket over mutating ops) and the server-wide ``--max-sessions`` cap
    on ``open``.  Like :class:`Overloaded` it is typed retryable with a
    ``retry_after_s`` hint — the refusal happens before any state is
    touched or any op is journaled, so re-issuing the identical request
    after the hint is always safe.  The distinct code lets clients and
    dashboards separate "the server is struggling" (overloaded) from
    "the caller is over its allowance" (quota-exceeded).
    """

    retryable = True

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__("quota-exceeded", message)
        self.retry_after_s = float(retry_after_s)


#: Stable wire code for every library exception a request can surface.
#: Ordered most-derived-first; the first ``isinstance`` match wins.
ERROR_CODES: tuple[tuple[type[BaseException], str], ...] = (
    (BudgetExceededError, "budget-exceeded"),
    (BoardOwnershipError, "board-ownership"),
    (LeaderElectionError, "leader-election"),
    (OracleTimeout, "oracle-timeout"),
    (InjectedCrash, "injected-crash"),
    (ConnectionLost, "connection-lost"),
    (ProtocolError, "protocol"),
    (ConfigurationError, "configuration"),
    (ExperimentError, "experiment"),
    (ReproError, "repro"),
)


def error_body(error: BaseException) -> dict[str, Any]:
    """The ``error`` object of a failure response for ``error``."""
    if isinstance(error, ServeError):
        code = error.code
    else:
        code = "internal"
        for klass, klass_code in ERROR_CODES:
            if isinstance(error, klass):
                code = klass_code
                break
    body: dict[str, Any] = {
        "code": code,
        "type": type(error).__name__,
        "message": str(error),
    }
    if getattr(error, "retryable", False):
        body["retryable"] = True
        retry_after_s = getattr(error, "retry_after_s", None)
        if retry_after_s is not None:
            body["retry_after_s"] = float(retry_after_s)
    return body


def ok_frame(request_id: Any, result: Any) -> dict[str, Any]:
    """A success response frame echoing ``request_id``."""
    return {"id": request_id, "ok": True, "result": result}


def error_frame(request_id: Any, error: BaseException) -> dict[str, Any]:
    """A failure response frame echoing ``request_id``."""
    return {"id": request_id, "ok": False, "error": error_body(error)}


def encode_frame(frame: dict[str, Any]) -> bytes:
    """Serialise one frame to its wire form (one JSON line)."""
    line = json.dumps(frame, separators=(",", ":"), default=_json_default)
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME_BYTES:
        raise ServeError(
            "frame-too-large",
            f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES} limit",
        )
    return data


def decode_frame(line: bytes) -> dict[str, Any]:
    """Parse one wire line back into a frame dictionary."""
    if len(line) > MAX_FRAME_BYTES:
        raise ServeError(
            "frame-too-large",
            f"frame of {len(line)} bytes exceeds the {MAX_FRAME_BYTES} limit",
        )
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as error:
        raise ServeError("bad-request", f"frame is not valid JSON: {error}") from error
    if not isinstance(frame, dict):
        raise ServeError(
            "bad-request", f"frame must be a JSON object, got {type(frame).__name__}"
        )
    return frame


def _json_default(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return encode_array(value)
    if isinstance(value, np.generic):
        return value.item()
    raise TypeError(f"frame value of type {type(value).__name__} is not JSON-encodable")


def encode_array(array: np.ndarray) -> dict[str, Any]:
    """JSON-clean exact encoding of an ndarray (base64 of the C-order buffer)."""
    array = np.ascontiguousarray(array)
    return {
        "__ndarray__": base64.b64encode(array.tobytes()).decode("ascii"),
        "dtype": str(array.dtype),
        "shape": list(array.shape),
    }


def decode_array(payload: dict[str, Any]) -> np.ndarray:
    """Invert :func:`encode_array` (bit-exact round trip)."""
    raw = base64.b64decode(payload["__ndarray__"])
    array = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
    return array.reshape(tuple(int(n) for n in payload["shape"])).copy()
