"""Bit-packed binary-vector kernels: the simulator's performance core.

Every hot computation in the protocol stack is Hamming-distance-shaped: a
binary vector (a preference estimate, a published report row, a candidate)
is compared against many others and the number of disagreeing positions is
counted.  The seed implementation materialised dense ``uint8`` tensors for
these comparisons — ``(P, k, s)`` broadcasts in Select, an ``(n, n)``
``int32`` Gram matrix in the neighbour graph, row-sorting ``np.unique`` in
ZeroRadius — which caps the simulable instance size long before the
algorithmic probe complexity does.

This module stores binary vectors **eight positions per byte**
(:func:`numpy.packbits`) and computes disagreement counts as XOR followed by
a population count.  The popcount uses :func:`numpy.bitwise_count` when the
installed NumPy provides it (>= 2.0) and a 256-entry lookup table otherwise,
so the kernels run everywhere the rest of the package does.

All kernels are *bit-for-bit* equivalent to their unpacked references —
``tests/test_perf_kernels.py`` asserts exact equality on random instances,
including widths that are not multiples of eight (the pad bits of the last
byte are zero in both operands and therefore never contribute to an XOR
popcount, and never change lexicographic row order).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ProtocolError

__all__ = [
    "PackedBits",
    "pack_bits",
    "popcount",
    "packed_hamming",
    "pairwise_hamming",
    "packed_majority",
    "packed_unique_rows",
]

#: Per-byte population counts, the fallback when ``np.bitwise_count`` is absent.
_POPCOUNT_LUT = (
    np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1)
    .sum(axis=1)
    .astype(np.uint8)
)
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Target scratch size (bytes) for chunked pairwise kernels.
_CHUNK_BYTES = 1 << 25


def popcount(values: np.ndarray) -> np.ndarray:
    """Per-byte population count of a ``uint8`` array.

    Uses the native ``np.bitwise_count`` ufunc when available, else a lookup
    table; both return ``uint8`` counts of the same shape as ``values``.
    """
    values = np.asarray(values, dtype=np.uint8)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(values)
    return _POPCOUNT_LUT[values]


@dataclass(frozen=True)
class PackedBits:
    """A binary array packed eight positions per byte along its last axis.

    ``data`` has the same leading shape as the source array with the last
    axis shrunk to ``ceil(n_bits / 8)`` bytes; ``n_bits`` remembers the
    logical width so pad bits can be stripped on unpacking.
    """

    data: np.ndarray
    n_bits: int

    @property
    def n_bytes(self) -> int:
        """Packed width of the last axis in bytes."""
        return int(self.data.shape[-1])

    @property
    def shape(self) -> tuple[int, ...]:
        """Logical (unpacked) shape."""
        return (*self.data.shape[:-1], self.n_bits)

    def unpack(self) -> np.ndarray:
        """The original binary array (``uint8`` entries in ``{0, 1}``)."""
        if self.n_bits == 0:
            return np.zeros(self.shape, dtype=np.uint8)
        return np.unpackbits(self.data, axis=-1, count=self.n_bits)


def pack_bits(values: np.ndarray) -> PackedBits:
    """Pack a binary array along its last axis.

    ``values`` must contain only 0/1 entries (``uint8`` or bool); the final
    partial byte, if any, is padded with zero bits, which every kernel in
    this module is invariant to.
    """
    values = np.asarray(values, dtype=np.uint8)
    if values.ndim == 0:
        raise ProtocolError("pack_bits requires at least a 1-D array")
    return PackedBits(data=np.packbits(values, axis=-1), n_bits=int(values.shape[-1]))


def packed_hamming(a_data: np.ndarray, b_data: np.ndarray) -> np.ndarray:
    """Hamming distances between packed operands, broadcasting leading axes.

    ``a_data`` and ``b_data`` are packed ``uint8`` arrays (``PackedBits.data``)
    of the *same* logical width; the result drops the byte axis, e.g.
    ``(P, 1, nb) ^ (1, k, nb) -> (P, k)``.  This replaces the seed's dense
    ``(P, k, s)`` ``!=``-broadcast with a tensor one eighth the size.
    """
    a_data = np.asarray(a_data, dtype=np.uint8)
    b_data = np.asarray(b_data, dtype=np.uint8)
    if a_data.shape[-1] != b_data.shape[-1]:
        raise ProtocolError(
            "packed operands disagree on byte width: "
            f"{a_data.shape[-1]} vs {b_data.shape[-1]}"
        )
    return popcount(np.bitwise_xor(a_data, b_data)).sum(axis=-1, dtype=np.int64)


def pairwise_hamming(packed: PackedBits) -> np.ndarray:
    """All-pairs Hamming distance matrix of a stack of packed rows.

    ``packed`` holds ``n`` rows; returns the symmetric ``(n, n)`` ``int64``
    distance matrix.  Work is chunked so the XOR scratch tensor stays under a
    fixed byte budget regardless of ``n``.
    """
    data = np.ascontiguousarray(packed.data)
    if data.ndim != 2:
        raise ProtocolError(f"pairwise_hamming requires 2-D rows, got shape {data.shape}")
    n, n_bytes = data.shape
    out = np.zeros((n, n), dtype=np.int64)
    if n_bytes == 0 or n == 0:
        return out
    chunk = max(1, _CHUNK_BYTES // max(1, n * n_bytes))
    for start in range(0, n, chunk):
        stop = min(n, start + chunk)
        xor = data[start:stop, None, :] ^ data[None, :, :]
        out[start:stop] = popcount(xor).sum(axis=2, dtype=np.int64)
    return out


def packed_majority(packed: PackedBits) -> np.ndarray:
    """Column-wise majority of a packed stack of binary rows (ties go to 1).

    ``packed`` holds ``k >= 1`` rows of width ``n_bits``; returns the
    ``uint8`` majority vector.  Column sums require per-position counts, so
    the rows are unpacked in a single C call before the reduction — callers
    that already hold packed rows pay no Python-level per-row work.
    """
    if packed.data.ndim != 2:
        raise ProtocolError(
            f"packed_majority requires 2-D rows, got shape {packed.data.shape}"
        )
    k = packed.data.shape[0]
    if k == 0:
        raise ProtocolError("cannot take the majority of zero vectors")
    if packed.n_bits == 0:
        return np.zeros(0, dtype=np.uint8)
    bits = np.unpackbits(packed.data, axis=-1, count=packed.n_bits)
    sums = bits.sum(axis=0, dtype=np.int64)
    return (2 * sums >= k).astype(np.uint8)


def packed_unique_rows(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Distinct rows of a binary matrix with their multiplicities.

    Bit-identical to ``np.unique(values, axis=0, return_counts=True)`` for
    0/1 matrices — rows come back in ascending lexicographic order — but
    sorts packed byte strings instead of full ``uint8`` rows, which is the
    difference between ZeroRadius spending half its time in ``np.unique``
    and it disappearing from the profile.  (MSB-first packing preserves the
    lexicographic order of binary rows, and the zero pad bits only break
    ties between rows that are already equal.)
    """
    values = np.asarray(values, dtype=np.uint8)
    if values.ndim != 2:
        raise ProtocolError(f"packed_unique_rows requires a 2-D matrix, got {values.shape}")
    n, width = values.shape
    if n == 0:
        return values.copy(), np.zeros(0, dtype=np.int64)
    if width == 0:
        return np.zeros((1, 0), dtype=np.uint8), np.asarray([n], dtype=np.int64)
    packed = np.ascontiguousarray(np.packbits(values, axis=1))
    n_bytes = packed.shape[1]
    if n_bytes <= 8:
        # Narrow rows fit one big-endian uint64 per row; numeric order on the
        # assembled keys equals lexicographic order on the packed bytes, and
        # integer unique is much faster than sorting void records.  The
        # unique rows are rebuilt from the keys themselves, avoiding the
        # argsort a return_index lookup would cost.
        keys = np.zeros(n, dtype=np.uint64)
        for column in range(n_bytes):
            keys = (keys << np.uint64(8)) | packed[:, column].astype(np.uint64)
        unique_keys, counts = np.unique(keys, return_counts=True)
        shifts = (np.uint64(8) * np.arange(n_bytes - 1, -1, -1, dtype=np.uint64))[None, :]
        unique_packed = (
            (unique_keys[:, None] >> shifts) & np.uint64(0xFF)
        ).astype(np.uint8)
        rows = np.unpackbits(unique_packed, axis=1, count=width)
        return rows, counts.astype(np.int64)
    as_items = packed.view([("row", np.void, n_bytes)]).ravel()
    _, first_index, counts = np.unique(as_items, return_index=True, return_counts=True)
    return values[first_index], counts.astype(np.int64)
