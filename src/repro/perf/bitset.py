"""Bit-packed binary-vector kernels: the simulator's performance core.

Every hot computation in the protocol stack is Hamming-distance-shaped: a
binary vector (a preference estimate, a published report row, a candidate)
is compared against many others and the number of disagreeing positions is
counted.  The seed implementation materialised dense ``uint8`` tensors for
these comparisons — ``(P, k, s)`` broadcasts in Select, an ``(n, n)``
``int32`` Gram matrix in the neighbour graph, row-sorting ``np.unique`` in
ZeroRadius — which caps the simulable instance size long before the
algorithmic probe complexity does.

This module stores binary vectors **eight positions per byte**
(:func:`numpy.packbits`) and computes disagreement counts as XOR followed by
a population count.  The popcount uses :func:`numpy.bitwise_count` when the
installed NumPy provides it (>= 2.0) and a 256-entry lookup table otherwise,
so the kernels run everywhere the rest of the package does.

All kernels are *bit-for-bit* equivalent to their unpacked references —
``tests/test_perf_kernels.py`` asserts exact equality on random instances,
including widths that are not multiples of eight (the pad bits of the last
byte are zero in both operands and therefore never contribute to an XOR
popcount, and never change lexicographic row order).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ProtocolError

__all__ = [
    "PackedBits",
    "pack_bits",
    "popcount",
    "bit_cover",
    "column_plan",
    "packed_hamming",
    "pairwise_hamming",
    "packed_majority",
    "packed_majority_tall",
    "packed_masked_majority",
    "packed_pair_vote",
    "packed_scatter_columns",
    "packed_gather_columns",
    "packed_unique_rows",
]

#: Per-byte population counts, the fallback when ``np.bitwise_count`` is absent.
_POPCOUNT_LUT = (
    np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1)
    .sum(axis=1)
    .astype(np.uint8)
)
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Target scratch size (bytes) for chunked pairwise kernels.
_CHUNK_BYTES = 1 << 25

#: Row count above which ``packed_majority`` switches to the vertical-counter
#: kernel (below it, one bulk unpack + column sum wins on call overhead).
_TALL_MAJORITY_ROWS = 256


def popcount(values: np.ndarray) -> np.ndarray:
    """Per-byte population count of a ``uint8`` array.

    Uses the native ``np.bitwise_count`` ufunc when available, else a lookup
    table; both return ``uint8`` counts of the same shape as ``values``.
    """
    values = np.asarray(values, dtype=np.uint8)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(values)
    return _POPCOUNT_LUT[values]


@dataclass(frozen=True)
class PackedBits:
    """A binary array packed eight positions per byte along its last axis.

    ``data`` has the same leading shape as the source array with the last
    axis shrunk to ``ceil(n_bits / 8)`` bytes; ``n_bits`` remembers the
    logical width so pad bits can be stripped on unpacking.
    """

    data: np.ndarray
    n_bits: int

    @property
    def n_bytes(self) -> int:
        """Packed width of the last axis in bytes."""
        return int(self.data.shape[-1])

    @property
    def shape(self) -> tuple[int, ...]:
        """Logical (unpacked) shape."""
        return (*self.data.shape[:-1], self.n_bits)

    def unpack(self) -> np.ndarray:
        """The original binary array (``uint8`` entries in ``{0, 1}``)."""
        if self.n_bits == 0:
            return np.zeros(self.shape, dtype=np.uint8)
        return np.unpackbits(self.data, axis=-1, count=self.n_bits)


def pack_bits(values: np.ndarray) -> PackedBits:
    """Pack a binary array along its last axis.

    ``values`` must contain only 0/1 entries (``uint8`` or bool); the final
    partial byte, if any, is padded with zero bits, which every kernel in
    this module is invariant to.
    """
    values = np.asarray(values, dtype=np.uint8)
    if values.ndim == 0:
        raise ProtocolError("pack_bits requires at least a 1-D array")
    return PackedBits(data=np.packbits(values, axis=-1), n_bits=int(values.shape[-1]))


def bit_cover(n_bits: int) -> np.ndarray:
    """Byte mask covering the first ``n_bits`` positions of a packed row.

    All bytes are ``0xFF`` except the last, whose trailing pad bits are zero
    (MSB-first packing).  ANDing with this mask clears pad bits, which keeps
    popcount-based reductions over packed rows exact for widths that are not
    multiples of eight.
    """
    if n_bits < 0:
        raise ProtocolError(f"n_bits must be non-negative, got {n_bits}")
    n_bytes = (n_bits + 7) // 8
    cover = np.full(n_bytes, 0xFF, dtype=np.uint8)
    tail = n_bits % 8
    if n_bytes and tail:
        cover[-1] = (0xFF << (8 - tail)) & 0xFF
    return cover


def column_plan(
    columns: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Byte-level access plan for a strictly increasing set of bit columns.

    Returns ``(touched, cover, weights, starts)``: the distinct byte indices
    the columns fall into, the per-touched-byte mask of covered bit
    positions, the per-column single-bit weight (``128 >> (column % 8)``)
    and the segment starts grouping columns by destination byte.  This is
    the shared front half of :func:`packed_scatter_columns`; callers that
    address the same column set repeatedly can compute it once.
    """
    columns = np.asarray(columns, dtype=np.int64)
    if columns.ndim != 1:
        raise ProtocolError(f"columns must be 1-D, got shape {columns.shape}")
    if columns.size and not np.all(columns[1:] > columns[:-1]):
        raise ProtocolError("columns must be strictly increasing")
    byte_idx = columns >> 3
    weights = np.uint8(128) >> (columns & 7).astype(np.uint8)
    if columns.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, np.zeros(0, dtype=np.uint8), weights, empty
    starts = np.flatnonzero(np.r_[True, byte_idx[1:] != byte_idx[:-1]])
    touched = byte_idx[starts]
    cover = np.add.reduceat(weights, starts).astype(np.uint8)
    return touched, cover, weights, starts


def packed_scatter_columns(
    dest: np.ndarray,
    columns: np.ndarray,
    bits: np.ndarray,
    rows: np.ndarray | None = None,
    plan: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> None:
    """Write bit columns into packed rows in place.

    ``dest`` is a packed ``uint8`` matrix (rows packed MSB-first along the
    last axis); after the call, bit ``columns[j]`` of destination row ``r``
    equals ``bits[r, j]``.  ``columns`` must be strictly increasing and
    ``bits`` must be 0/1.  Only the touched bytes are read-modified-written,
    so a scatter of ``m`` columns costs ``O(rows · m)`` byte ops with
    sequential access — no full-width traffic and no bool mask the size of
    the unpacked matrix.  ``rows`` restricts the write to a subset of
    destination rows (``bits`` then has one row per entry); ``plan`` reuses a
    precomputed :func:`column_plan` for repeated scatters to one column set.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    columns = np.asarray(columns, dtype=np.int64)
    if bits.ndim != 2 or bits.shape[1] != columns.size:
        raise ProtocolError(
            f"bits must have shape (rows, {columns.size}), got {bits.shape}"
        )
    if columns.size == 0:
        return
    touched, cover, weights, starts = plan if plan is not None else column_plan(columns)
    contrib = np.add.reduceat(bits * weights[None, :], starts, axis=1).astype(np.uint8)
    if rows is None:
        dest[:, touched] = (dest[:, touched] & ~cover) | contrib
    else:
        rows = np.asarray(rows, dtype=np.int64)
        sub = dest[rows[:, None], touched[None, :]]
        dest[rows[:, None], touched[None, :]] = (sub & ~cover) | contrib


def packed_gather_columns(
    source: np.ndarray, columns: np.ndarray, rows: np.ndarray | None = None
) -> np.ndarray:
    """Read bit columns out of packed rows.

    Inverse of :func:`packed_scatter_columns`: returns the dense 0/1 matrix
    of shape ``(rows, len(columns))`` holding bit ``columns[j]`` of each
    selected row.  Only the touched bytes are gathered and unpacked.
    """
    columns = np.asarray(columns, dtype=np.int64)
    if columns.size and not np.all(columns[1:] > columns[:-1]):
        raise ProtocolError("columns must be strictly increasing")
    n_rows = source.shape[0] if rows is None else np.asarray(rows).size
    if columns.size == 0:
        return np.zeros((n_rows, 0), dtype=np.uint8)
    byte_idx = columns >> 3
    touched, inverse = np.unique(byte_idx, return_inverse=True)
    sub = source[:, touched] if rows is None else source[np.asarray(rows)[:, None], touched[None, :]]
    bits = np.unpackbits(sub, axis=1)
    return bits[:, inverse * 8 + (columns & 7)]


def packed_masked_majority(
    values: PackedBits, posted: PackedBits, default: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row majority of value bits over the posted cells (ties go to 1).

    ``values`` and ``posted`` are packed stacks of the same logical shape;
    row ``r``'s majority counts only the positions whose ``posted`` bit is
    set (a bulletin-board row where not every player reported).  Returns
    ``(majority, support)``: the ``uint8`` majority per row (rows with zero
    posted cells fall back to ``default``) and the ``int64`` count of posted
    cells per row.  Everything is XOR/AND + popcount on the packed words —
    the dense equivalent is two full-size masked reductions.
    """
    if values.data.shape != posted.data.shape or values.n_bits != posted.n_bits:
        raise ProtocolError(
            "values and posted must share one packed shape, got "
            f"{values.data.shape}/{values.n_bits} vs {posted.data.shape}/{posted.n_bits}"
        )
    support = popcount(posted.data).sum(axis=-1, dtype=np.int64)
    likes = popcount(values.data & posted.data).sum(axis=-1, dtype=np.int64)
    majority = np.where(support > 0, (2 * likes >= support), bool(default)).astype(np.uint8)
    return majority, support


def packed_hamming(a_data: np.ndarray, b_data: np.ndarray) -> np.ndarray:
    """Hamming distances between packed operands, broadcasting leading axes.

    ``a_data`` and ``b_data`` are packed ``uint8`` arrays (``PackedBits.data``)
    of the *same* logical width; the result drops the byte axis, e.g.
    ``(P, 1, nb) ^ (1, k, nb) -> (P, k)``.  This replaces the seed's dense
    ``(P, k, s)`` ``!=``-broadcast with a tensor one eighth the size.
    """
    a_data = np.asarray(a_data, dtype=np.uint8)
    b_data = np.asarray(b_data, dtype=np.uint8)
    if a_data.shape[-1] != b_data.shape[-1]:
        raise ProtocolError(
            "packed operands disagree on byte width: "
            f"{a_data.shape[-1]} vs {b_data.shape[-1]}"
        )
    return popcount(np.bitwise_xor(a_data, b_data)).sum(axis=-1, dtype=np.int64)


def pairwise_hamming(packed: PackedBits) -> np.ndarray:
    """All-pairs Hamming distance matrix of a stack of packed rows.

    ``packed`` holds ``n`` rows; returns the symmetric ``(n, n)`` ``int64``
    distance matrix.  Work is chunked so the XOR scratch tensor stays under a
    fixed byte budget regardless of ``n``, and only the upper block triangle
    is computed — each chunk XORs against the rows at or after its own start
    and the transpose fills the mirror half, roughly halving the popcount
    traffic of the full Gram-style sweep.
    """
    data = np.ascontiguousarray(packed.data)
    if data.ndim != 2:
        raise ProtocolError(f"pairwise_hamming requires 2-D rows, got shape {data.shape}")
    n, n_bytes = data.shape
    out = np.zeros((n, n), dtype=np.int64)
    if n_bytes == 0 or n == 0:
        return out
    if _HAS_BITWISE_COUNT:
        # Work in 64-bit words: zero-padding to a word multiple never adds
        # popcount, and XOR + bitwise_count on uint64 does an eighth of the
        # element traffic of the byte path.
        pad = (-n_bytes) % 8
        if pad:
            data = np.ascontiguousarray(
                np.pad(data, ((0, 0), (0, pad)), mode="constant")
            )
        data = data.view(np.uint64)
        n_bytes = data.shape[1]
    chunk = max(1, _CHUNK_BYTES // max(1, n * n_bytes * data.itemsize))
    # Small chunks are what make the triangle trick pay: the wasted corner of
    # each chunk's [start:, :] slab shrinks with the chunk height.
    chunk = min(chunk, max(32, (n + 7) // 8))
    for start in range(0, n, chunk):
        stop = min(n, start + chunk)
        xor = data[start:stop, None, :] ^ data[None, start:, :]
        if _HAS_BITWISE_COUNT:
            block = np.bitwise_count(xor).sum(axis=2, dtype=np.int64)
        else:
            block = popcount(xor).sum(axis=2, dtype=np.int64)
        out[start:stop, start:] = block
        out[start:, start:stop] = block.T
    return out


def packed_majority(packed: PackedBits) -> np.ndarray:
    """Column-wise majority of a packed stack of binary rows (ties go to 1).

    ``packed`` holds ``k >= 1`` rows of width ``n_bits``; returns the
    ``uint8`` majority vector.  Short stacks are unpacked in a single C call
    before the column reduction; tall stacks (``k`` in the hundreds and up)
    dispatch to the bit-sliced :func:`packed_majority_tall`, which never
    materialises the ``(k, n_bits)`` matrix.  Both paths are bit-identical.
    """
    if packed.data.ndim != 2:
        raise ProtocolError(
            f"packed_majority requires 2-D rows, got shape {packed.data.shape}"
        )
    k = packed.data.shape[0]
    if k == 0:
        raise ProtocolError("cannot take the majority of zero vectors")
    if packed.n_bits == 0:
        return np.zeros(0, dtype=np.uint8)
    if k >= _TALL_MAJORITY_ROWS:
        return packed_majority_tall(packed)
    bits = np.unpackbits(packed.data, axis=-1, count=packed.n_bits)
    sums = bits.sum(axis=0, dtype=np.int64)
    return (2 * sums >= k).astype(np.uint8)


def _carry_save_add(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Full adder on bit-plane rows: returns (sum, carry) planes."""
    a_xor_b = a ^ b
    return a_xor_b ^ c, (a & b) | (a_xor_b & c)


def packed_majority_tall(packed: PackedBits) -> np.ndarray:
    """Column-wise majority via bit-sliced vertical counters (ties go to 1).

    Bit-identical to the unpack-and-sum reference, but per-position counts
    are accumulated as ``O(log k)`` packed counter planes: rows are reduced
    three-at-a-time with a carry-save adder (one XOR/AND pass handles a third
    of the remaining rows at once), carries cascade to the next plane, and
    the final count-vs-``ceil(k/2)`` comparison is done bitwise from the most
    significant plane down.  Total work is ``O(k log k)`` byte-ops on
    ``n_bits/8``-wide rows with no ``(k, n_bits)`` unpacked scratch, which is
    what makes very tall vote stacks (k ≫ 8·log n) cheap.
    """
    if packed.data.ndim != 2:
        raise ProtocolError(
            f"packed_majority_tall requires 2-D rows, got shape {packed.data.shape}"
        )
    k = packed.data.shape[0]
    if k == 0:
        raise ProtocolError("cannot take the majority of zero vectors")
    if packed.n_bits == 0:
        return np.zeros(0, dtype=np.uint8)

    # levels[j] holds rows each of whose set bits is worth 2^j; reduce every
    # level to a single plane, cascading carries upward.
    levels: list[np.ndarray] = [np.ascontiguousarray(packed.data)]
    planes: list[np.ndarray] = []
    level = 0
    while level < len(levels):
        rows = levels[level]
        while rows.shape[0] > 1:
            full = 3 * (rows.shape[0] // 3)
            if full:
                sums, carries = _carry_save_add(
                    rows[0:full:3], rows[1:full:3], rows[2:full:3]
                )
                rows = np.concatenate([sums, rows[full:]], axis=0)
            else:  # two rows left: half adder
                sums, carries = rows[0] ^ rows[1], rows[0] & rows[1]
                rows = sums[None, :]
            if carries.ndim == 1:
                carries = carries[None, :]
            if level + 1 == len(levels):
                levels.append(carries)
            else:
                levels[level + 1] = np.concatenate(
                    [levels[level + 1], carries], axis=0
                )
        planes.append(rows[0] if rows.shape[0] else np.zeros(packed.n_bytes, np.uint8))
        level += 1

    # count >= ceil(k/2) per position, compared bitwise MSB-plane down.
    threshold = (k + 1) // 2
    n_planes = max(len(planes), threshold.bit_length())
    greater = np.zeros(packed.n_bytes, dtype=np.uint8)
    equal = np.full(packed.n_bytes, 0xFF, dtype=np.uint8)
    for bit in range(n_planes - 1, -1, -1):
        plane = planes[bit] if bit < len(planes) else np.zeros(packed.n_bytes, np.uint8)
        if (threshold >> bit) & 1:
            equal &= plane
        else:
            greater |= equal & plane
    return np.unpackbits(greater | equal, count=packed.n_bits)


def packed_pair_vote(
    true_rows: np.ndarray,
    a_rows: np.ndarray,
    b_rows: np.ndarray,
    lengths: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row agreement counts of probed values against two candidate rows.

    The operands are 0/1 matrices of shape ``(r, max_len)`` where row ``i``
    is meaningful only on its first ``lengths[i]`` columns and **must be
    zero-padded** beyond (in all three operands).  ``true_rows`` may also be
    an already-packed :class:`PackedBits` of that logical shape (as returned
    by ``ProbeOracle.probe_ragged(..., packed=True)``), in which case it is
    consumed without a repack.  Returns ``(agree_a,
    agree_b)`` ``int64`` arrays: on how many of its meaningful columns row
    ``i`` of ``true_rows`` equals the corresponding candidate row.

    Because the pad columns are zero everywhere they never disagree, so the
    agreement is ``lengths − packed_hamming(true, cand)`` — one XOR+popcount
    per candidate over byte-packed rows instead of two dense ``==`` +
    reduction broadcasts.  This is the vote kernel of the collective RSelect
    tournament, where the rows are the ragged per-player probe samples of one
    candidate-pair round.
    """
    if isinstance(true_rows, PackedBits):
        true_packed = true_rows
    else:
        true_packed = pack_bits(np.asarray(true_rows, dtype=np.uint8))
    a_rows = np.asarray(a_rows, dtype=np.uint8)
    b_rows = np.asarray(b_rows, dtype=np.uint8)
    lengths = np.asarray(lengths, dtype=np.int64)
    shape = true_packed.shape
    if len(shape) != 2 or shape != a_rows.shape or shape != b_rows.shape:
        raise ProtocolError(
            "packed_pair_vote operands must share one 2-D shape, got "
            f"{shape}, {a_rows.shape}, {b_rows.shape}"
        )
    if lengths.shape != (shape[0],):
        raise ProtocolError(
            f"lengths must have shape ({shape[0]},), got {lengths.shape}"
        )
    if np.any(lengths < 0) or np.any(lengths > shape[1]):
        raise ProtocolError("lengths must lie in [0, max_len]")
    agree_a = lengths - packed_hamming(true_packed.data, pack_bits(a_rows).data)
    agree_b = lengths - packed_hamming(true_packed.data, pack_bits(b_rows).data)
    return agree_a, agree_b


def packed_unique_rows(
    values: np.ndarray | PackedBits,
) -> tuple[np.ndarray, np.ndarray]:
    """Distinct rows of a binary matrix with their multiplicities.

    Bit-identical to ``np.unique(values, axis=0, return_counts=True)`` for
    0/1 matrices — rows come back in ascending lexicographic order — but
    sorts packed byte strings instead of full ``uint8`` rows, which is the
    difference between ZeroRadius spending half its time in ``np.unique``
    and it disappearing from the profile.  (MSB-first packing preserves the
    lexicographic order of binary rows, and the zero pad bits only break
    ties between rows that are already equal.)  A :class:`PackedBits` input
    — e.g. a published block straight off the packed dataflow — is consumed
    without re-packing.
    """
    if isinstance(values, PackedBits):
        if values.data.ndim != 2:
            raise ProtocolError(
                f"packed_unique_rows requires 2-D rows, got {values.data.shape}"
            )
        n, width = values.shape
        if n == 0:
            return np.zeros((0, width), dtype=np.uint8), np.zeros(0, dtype=np.int64)
        if width == 0:
            return np.zeros((1, 0), dtype=np.uint8), np.asarray([n], dtype=np.int64)
        return _packed_unique_core(np.ascontiguousarray(values.data), None, width)
    values = np.asarray(values, dtype=np.uint8)
    if values.ndim != 2:
        raise ProtocolError(f"packed_unique_rows requires a 2-D matrix, got {values.shape}")
    n, width = values.shape
    if n == 0:
        return values.copy(), np.zeros(0, dtype=np.int64)
    if width == 0:
        return np.zeros((1, 0), dtype=np.uint8), np.asarray([n], dtype=np.int64)
    packed = np.ascontiguousarray(np.packbits(values, axis=1))
    return _packed_unique_core(packed, values, width)


def _packed_unique_core(
    packed: np.ndarray, values: np.ndarray | None, width: int
) -> tuple[np.ndarray, np.ndarray]:
    """Shared body of :func:`packed_unique_rows` over pre-packed rows."""
    n = packed.shape[0]
    n_bytes = packed.shape[1]
    if n_bytes <= 8:
        # Narrow rows fit one big-endian uint64 per row; numeric order on the
        # assembled keys equals lexicographic order on the packed bytes, and
        # integer unique is much faster than sorting void records.  The
        # unique rows are rebuilt from the keys themselves, avoiding the
        # argsort a return_index lookup would cost.
        keys = np.zeros(n, dtype=np.uint64)
        for column in range(n_bytes):
            keys = (keys << np.uint64(8)) | packed[:, column].astype(np.uint64)
        unique_keys, counts = np.unique(keys, return_counts=True)
        shifts = (np.uint64(8) * np.arange(n_bytes - 1, -1, -1, dtype=np.uint64))[None, :]
        unique_packed = (
            (unique_keys[:, None] >> shifts) & np.uint64(0xFF)
        ).astype(np.uint8)
        rows = np.unpackbits(unique_packed, axis=1, count=width)
        return rows, counts.astype(np.int64)
    as_items = packed.view([("row", np.void, n_bytes)]).ravel()
    _, first_index, counts = np.unique(as_items, return_index=True, return_counts=True)
    if values is None:
        rows = np.unpackbits(packed[first_index], axis=1, count=width)
        return rows, counts.astype(np.int64)
    return values[first_index], counts.astype(np.int64)
