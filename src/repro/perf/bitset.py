"""Bit-packed binary-vector kernels: the simulator's performance core.

Every hot computation in the protocol stack is Hamming-distance-shaped: a
binary vector (a preference estimate, a published report row, a candidate)
is compared against many others and the number of disagreeing positions is
counted.  The seed implementation materialised dense ``uint8`` tensors for
these comparisons — ``(P, k, s)`` broadcasts in Select, an ``(n, n)``
``int32`` Gram matrix in the neighbour graph, row-sorting ``np.unique`` in
ZeroRadius — which caps the simulable instance size long before the
algorithmic probe complexity does.

This module stores binary vectors **eight positions per byte**
(:func:`numpy.packbits`) and computes disagreement counts as XOR followed by
a population count.  The popcount uses :func:`numpy.bitwise_count` when the
installed NumPy provides it (>= 2.0) and a 256-entry lookup table otherwise,
so the kernels run everywhere the rest of the package does.

All kernels are *bit-for-bit* equivalent to their unpacked references —
``tests/test_perf_kernels.py`` asserts exact equality on random instances,
including widths that are not multiples of eight (the pad bits of the last
byte are zero in both operands and therefore never contribute to an XOR
popcount, and never change lexicographic row order).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ProtocolError

__all__ = [
    "PackedBits",
    "pack_bits",
    "popcount",
    "packed_hamming",
    "pairwise_hamming",
    "packed_majority",
    "packed_majority_tall",
    "packed_pair_vote",
    "packed_unique_rows",
]

#: Per-byte population counts, the fallback when ``np.bitwise_count`` is absent.
_POPCOUNT_LUT = (
    np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1)
    .sum(axis=1)
    .astype(np.uint8)
)
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Target scratch size (bytes) for chunked pairwise kernels.
_CHUNK_BYTES = 1 << 25

#: Row count above which ``packed_majority`` switches to the vertical-counter
#: kernel (below it, one bulk unpack + column sum wins on call overhead).
_TALL_MAJORITY_ROWS = 256


def popcount(values: np.ndarray) -> np.ndarray:
    """Per-byte population count of a ``uint8`` array.

    Uses the native ``np.bitwise_count`` ufunc when available, else a lookup
    table; both return ``uint8`` counts of the same shape as ``values``.
    """
    values = np.asarray(values, dtype=np.uint8)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(values)
    return _POPCOUNT_LUT[values]


@dataclass(frozen=True)
class PackedBits:
    """A binary array packed eight positions per byte along its last axis.

    ``data`` has the same leading shape as the source array with the last
    axis shrunk to ``ceil(n_bits / 8)`` bytes; ``n_bits`` remembers the
    logical width so pad bits can be stripped on unpacking.
    """

    data: np.ndarray
    n_bits: int

    @property
    def n_bytes(self) -> int:
        """Packed width of the last axis in bytes."""
        return int(self.data.shape[-1])

    @property
    def shape(self) -> tuple[int, ...]:
        """Logical (unpacked) shape."""
        return (*self.data.shape[:-1], self.n_bits)

    def unpack(self) -> np.ndarray:
        """The original binary array (``uint8`` entries in ``{0, 1}``)."""
        if self.n_bits == 0:
            return np.zeros(self.shape, dtype=np.uint8)
        return np.unpackbits(self.data, axis=-1, count=self.n_bits)


def pack_bits(values: np.ndarray) -> PackedBits:
    """Pack a binary array along its last axis.

    ``values`` must contain only 0/1 entries (``uint8`` or bool); the final
    partial byte, if any, is padded with zero bits, which every kernel in
    this module is invariant to.
    """
    values = np.asarray(values, dtype=np.uint8)
    if values.ndim == 0:
        raise ProtocolError("pack_bits requires at least a 1-D array")
    return PackedBits(data=np.packbits(values, axis=-1), n_bits=int(values.shape[-1]))


def packed_hamming(a_data: np.ndarray, b_data: np.ndarray) -> np.ndarray:
    """Hamming distances between packed operands, broadcasting leading axes.

    ``a_data`` and ``b_data`` are packed ``uint8`` arrays (``PackedBits.data``)
    of the *same* logical width; the result drops the byte axis, e.g.
    ``(P, 1, nb) ^ (1, k, nb) -> (P, k)``.  This replaces the seed's dense
    ``(P, k, s)`` ``!=``-broadcast with a tensor one eighth the size.
    """
    a_data = np.asarray(a_data, dtype=np.uint8)
    b_data = np.asarray(b_data, dtype=np.uint8)
    if a_data.shape[-1] != b_data.shape[-1]:
        raise ProtocolError(
            "packed operands disagree on byte width: "
            f"{a_data.shape[-1]} vs {b_data.shape[-1]}"
        )
    return popcount(np.bitwise_xor(a_data, b_data)).sum(axis=-1, dtype=np.int64)


def pairwise_hamming(packed: PackedBits) -> np.ndarray:
    """All-pairs Hamming distance matrix of a stack of packed rows.

    ``packed`` holds ``n`` rows; returns the symmetric ``(n, n)`` ``int64``
    distance matrix.  Work is chunked so the XOR scratch tensor stays under a
    fixed byte budget regardless of ``n``.
    """
    data = np.ascontiguousarray(packed.data)
    if data.ndim != 2:
        raise ProtocolError(f"pairwise_hamming requires 2-D rows, got shape {data.shape}")
    n, n_bytes = data.shape
    out = np.zeros((n, n), dtype=np.int64)
    if n_bytes == 0 or n == 0:
        return out
    if _HAS_BITWISE_COUNT:
        # Work in 64-bit words: zero-padding to a word multiple never adds
        # popcount, and XOR + bitwise_count on uint64 does an eighth of the
        # element traffic of the byte path.
        pad = (-n_bytes) % 8
        if pad:
            data = np.ascontiguousarray(
                np.pad(data, ((0, 0), (0, pad)), mode="constant")
            )
        data = data.view(np.uint64)
        n_bytes = data.shape[1]
    chunk = max(1, _CHUNK_BYTES // max(1, n * n_bytes * data.itemsize))
    for start in range(0, n, chunk):
        stop = min(n, start + chunk)
        xor = data[start:stop, None, :] ^ data[None, :, :]
        if _HAS_BITWISE_COUNT:
            out[start:stop] = np.bitwise_count(xor).sum(axis=2, dtype=np.int64)
        else:
            out[start:stop] = popcount(xor).sum(axis=2, dtype=np.int64)
    return out


def packed_majority(packed: PackedBits) -> np.ndarray:
    """Column-wise majority of a packed stack of binary rows (ties go to 1).

    ``packed`` holds ``k >= 1`` rows of width ``n_bits``; returns the
    ``uint8`` majority vector.  Short stacks are unpacked in a single C call
    before the column reduction; tall stacks (``k`` in the hundreds and up)
    dispatch to the bit-sliced :func:`packed_majority_tall`, which never
    materialises the ``(k, n_bits)`` matrix.  Both paths are bit-identical.
    """
    if packed.data.ndim != 2:
        raise ProtocolError(
            f"packed_majority requires 2-D rows, got shape {packed.data.shape}"
        )
    k = packed.data.shape[0]
    if k == 0:
        raise ProtocolError("cannot take the majority of zero vectors")
    if packed.n_bits == 0:
        return np.zeros(0, dtype=np.uint8)
    if k >= _TALL_MAJORITY_ROWS:
        return packed_majority_tall(packed)
    bits = np.unpackbits(packed.data, axis=-1, count=packed.n_bits)
    sums = bits.sum(axis=0, dtype=np.int64)
    return (2 * sums >= k).astype(np.uint8)


def _carry_save_add(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Full adder on bit-plane rows: returns (sum, carry) planes."""
    a_xor_b = a ^ b
    return a_xor_b ^ c, (a & b) | (a_xor_b & c)


def packed_majority_tall(packed: PackedBits) -> np.ndarray:
    """Column-wise majority via bit-sliced vertical counters (ties go to 1).

    Bit-identical to the unpack-and-sum reference, but per-position counts
    are accumulated as ``O(log k)`` packed counter planes: rows are reduced
    three-at-a-time with a carry-save adder (one XOR/AND pass handles a third
    of the remaining rows at once), carries cascade to the next plane, and
    the final count-vs-``ceil(k/2)`` comparison is done bitwise from the most
    significant plane down.  Total work is ``O(k log k)`` byte-ops on
    ``n_bits/8``-wide rows with no ``(k, n_bits)`` unpacked scratch, which is
    what makes very tall vote stacks (k ≫ 8·log n) cheap.
    """
    if packed.data.ndim != 2:
        raise ProtocolError(
            f"packed_majority_tall requires 2-D rows, got shape {packed.data.shape}"
        )
    k = packed.data.shape[0]
    if k == 0:
        raise ProtocolError("cannot take the majority of zero vectors")
    if packed.n_bits == 0:
        return np.zeros(0, dtype=np.uint8)

    # levels[j] holds rows each of whose set bits is worth 2^j; reduce every
    # level to a single plane, cascading carries upward.
    levels: list[np.ndarray] = [np.ascontiguousarray(packed.data)]
    planes: list[np.ndarray] = []
    level = 0
    while level < len(levels):
        rows = levels[level]
        while rows.shape[0] > 1:
            full = 3 * (rows.shape[0] // 3)
            if full:
                sums, carries = _carry_save_add(
                    rows[0:full:3], rows[1:full:3], rows[2:full:3]
                )
                rows = np.concatenate([sums, rows[full:]], axis=0)
            else:  # two rows left: half adder
                sums, carries = rows[0] ^ rows[1], rows[0] & rows[1]
                rows = sums[None, :]
            if carries.ndim == 1:
                carries = carries[None, :]
            if level + 1 == len(levels):
                levels.append(carries)
            else:
                levels[level + 1] = np.concatenate(
                    [levels[level + 1], carries], axis=0
                )
        planes.append(rows[0] if rows.shape[0] else np.zeros(packed.n_bytes, np.uint8))
        level += 1

    # count >= ceil(k/2) per position, compared bitwise MSB-plane down.
    threshold = (k + 1) // 2
    n_planes = max(len(planes), threshold.bit_length())
    greater = np.zeros(packed.n_bytes, dtype=np.uint8)
    equal = np.full(packed.n_bytes, 0xFF, dtype=np.uint8)
    for bit in range(n_planes - 1, -1, -1):
        plane = planes[bit] if bit < len(planes) else np.zeros(packed.n_bytes, np.uint8)
        if (threshold >> bit) & 1:
            equal &= plane
        else:
            greater |= equal & plane
    return np.unpackbits(greater | equal, count=packed.n_bits)


def packed_pair_vote(
    true_rows: np.ndarray,
    a_rows: np.ndarray,
    b_rows: np.ndarray,
    lengths: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row agreement counts of probed values against two candidate rows.

    The operands are 0/1 matrices of shape ``(r, max_len)`` where row ``i``
    is meaningful only on its first ``lengths[i]`` columns and **must be
    zero-padded** beyond (in all three operands).  Returns ``(agree_a,
    agree_b)`` ``int64`` arrays: on how many of its meaningful columns row
    ``i`` of ``true_rows`` equals the corresponding candidate row.

    Because the pad columns are zero everywhere they never disagree, so the
    agreement is ``lengths − packed_hamming(true, cand)`` — one XOR+popcount
    per candidate over byte-packed rows instead of two dense ``==`` +
    reduction broadcasts.  This is the vote kernel of the collective RSelect
    tournament, where the rows are the ragged per-player probe samples of one
    candidate-pair round.
    """
    true_rows = np.asarray(true_rows, dtype=np.uint8)
    a_rows = np.asarray(a_rows, dtype=np.uint8)
    b_rows = np.asarray(b_rows, dtype=np.uint8)
    lengths = np.asarray(lengths, dtype=np.int64)
    if true_rows.ndim != 2 or true_rows.shape != a_rows.shape or true_rows.shape != b_rows.shape:
        raise ProtocolError(
            "packed_pair_vote operands must share one 2-D shape, got "
            f"{true_rows.shape}, {a_rows.shape}, {b_rows.shape}"
        )
    if lengths.shape != (true_rows.shape[0],):
        raise ProtocolError(
            f"lengths must have shape ({true_rows.shape[0]},), got {lengths.shape}"
        )
    if np.any(lengths < 0) or np.any(lengths > true_rows.shape[1]):
        raise ProtocolError("lengths must lie in [0, max_len]")
    true_packed = pack_bits(true_rows)
    agree_a = lengths - packed_hamming(true_packed.data, pack_bits(a_rows).data)
    agree_b = lengths - packed_hamming(true_packed.data, pack_bits(b_rows).data)
    return agree_a, agree_b


def packed_unique_rows(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Distinct rows of a binary matrix with their multiplicities.

    Bit-identical to ``np.unique(values, axis=0, return_counts=True)`` for
    0/1 matrices — rows come back in ascending lexicographic order — but
    sorts packed byte strings instead of full ``uint8`` rows, which is the
    difference between ZeroRadius spending half its time in ``np.unique``
    and it disappearing from the profile.  (MSB-first packing preserves the
    lexicographic order of binary rows, and the zero pad bits only break
    ties between rows that are already equal.)
    """
    values = np.asarray(values, dtype=np.uint8)
    if values.ndim != 2:
        raise ProtocolError(f"packed_unique_rows requires a 2-D matrix, got {values.shape}")
    n, width = values.shape
    if n == 0:
        return values.copy(), np.zeros(0, dtype=np.int64)
    if width == 0:
        return np.zeros((1, 0), dtype=np.uint8), np.asarray([n], dtype=np.int64)
    packed = np.ascontiguousarray(np.packbits(values, axis=1))
    n_bytes = packed.shape[1]
    if n_bytes <= 8:
        # Narrow rows fit one big-endian uint64 per row; numeric order on the
        # assembled keys equals lexicographic order on the packed bytes, and
        # integer unique is much faster than sorting void records.  The
        # unique rows are rebuilt from the keys themselves, avoiding the
        # argsort a return_index lookup would cost.
        keys = np.zeros(n, dtype=np.uint64)
        for column in range(n_bytes):
            keys = (keys << np.uint64(8)) | packed[:, column].astype(np.uint64)
        unique_keys, counts = np.unique(keys, return_counts=True)
        shifts = (np.uint64(8) * np.arange(n_bytes - 1, -1, -1, dtype=np.uint64))[None, :]
        unique_packed = (
            (unique_keys[:, None] >> shifts) & np.uint64(0xFF)
        ).astype(np.uint8)
        rows = np.unpackbits(unique_packed, axis=1, count=width)
        return rows, counts.astype(np.int64)
    as_items = packed.view([("row", np.void, n_bytes)]).ravel()
    _, first_index, counts = np.unique(as_items, return_index=True, return_counts=True)
    return values[first_index], counts.astype(np.int64)
