"""Performance core: bit-packed kernels shared by every hot protocol path.

``repro.perf`` hosts representation-level optimisations that are invisible
at the protocol layer: :mod:`repro.perf.bitset` packs binary vectors eight
positions per byte and computes Hamming-shaped reductions as XOR+popcount.
The consumers are the Select distance estimators
(:mod:`repro.protocols.select`), the collective RSelect tournament
(:mod:`repro.protocols.rselect`, via :func:`packed_pair_vote`), the
neighbour graph (:mod:`repro.core.clustering`), ZeroRadius'
popular-vector extraction (:mod:`repro.protocols.zero_radius`), and — since
the packed-board rework — the bulletin board itself
(:mod:`repro.simulation.board`, via :func:`packed_scatter_columns` and
:func:`packed_masked_majority`) and the probe oracle's memoisation mask
(:mod:`repro.simulation.oracle`); ``PERFORMANCE.md`` records the measured
speedups.  Everything here is exact — no approximation is introduced, and
the property tests assert bit-for-bit equality with the unpacked
references.
"""

from repro.perf.bitset import (
    PackedBits,
    bit_cover,
    column_plan,
    pack_bits,
    packed_gather_columns,
    packed_hamming,
    packed_majority,
    packed_majority_tall,
    packed_masked_majority,
    packed_pair_vote,
    packed_scatter_columns,
    packed_unique_rows,
    pairwise_hamming,
    popcount,
)

__all__ = [
    "PackedBits",
    "bit_cover",
    "column_plan",
    "pack_bits",
    "packed_gather_columns",
    "packed_hamming",
    "packed_majority",
    "packed_majority_tall",
    "packed_masked_majority",
    "packed_pair_vote",
    "packed_scatter_columns",
    "packed_unique_rows",
    "pairwise_hamming",
    "popcount",
]
