"""Performance core: bit-packed kernels shared by every hot protocol path.

``repro.perf`` hosts representation-level optimisations that are invisible
at the protocol layer: :mod:`repro.perf.bitset` packs binary vectors eight
positions per byte and computes Hamming-shaped reductions as XOR+popcount.
The consumers are the Select distance estimators
(:mod:`repro.protocols.select`), the collective RSelect tournament
(:mod:`repro.protocols.rselect`, via :func:`packed_pair_vote`), the
neighbour graph (:mod:`repro.core.clustering`), ZeroRadius'
popular-vector extraction (:mod:`repro.protocols.zero_radius`), and — since
the packed-board rework — the bulletin board itself
(:mod:`repro.simulation.board`, via :func:`packed_scatter_columns` and
:func:`packed_masked_majority`) and the probe oracle's memoisation mask
(:mod:`repro.simulation.oracle`); ``PERFORMANCE.md`` records the measured
speedups.  Everything here is exact — no approximation is introduced, and
the property tests assert bit-for-bit equality with the unpacked
references.

The bulk kernels exported here are wrapped with
:func:`repro.obs.runtime.timed_kernel`: while a telemetry collection is
installed each call feeds a ``perf.<kernel>`` calls/cumulative-time timer
(the e13 microbench dimensions); when idle the wrapper is a single
``is None`` gate.  ``popcount``/``bit_cover``/``column_plan`` stay bare —
they are tiny, extremely frequent helpers whose timings would be noise —
and calls *between* kernels inside :mod:`repro.perf.bitset` bypass the
wrappers, so a dispatching kernel (e.g. :func:`packed_majority` handing
tall inputs to its carry-save path) is accounted once, at the public entry.
"""

from repro.obs.runtime import timed_kernel
from repro.perf import bitset as _bitset
from repro.perf.bitset import PackedBits, bit_cover, column_plan, popcount

pack_bits = timed_kernel(_bitset.pack_bits)
packed_gather_columns = timed_kernel(_bitset.packed_gather_columns)
packed_hamming = timed_kernel(_bitset.packed_hamming)
packed_majority = timed_kernel(_bitset.packed_majority)
packed_majority_tall = timed_kernel(_bitset.packed_majority_tall)
packed_masked_majority = timed_kernel(_bitset.packed_masked_majority)
packed_pair_vote = timed_kernel(_bitset.packed_pair_vote)
packed_scatter_columns = timed_kernel(_bitset.packed_scatter_columns)
packed_unique_rows = timed_kernel(_bitset.packed_unique_rows)
pairwise_hamming = timed_kernel(_bitset.pairwise_hamming)

__all__ = [
    "PackedBits",
    "bit_cover",
    "column_plan",
    "pack_bits",
    "packed_gather_columns",
    "packed_hamming",
    "packed_majority",
    "packed_majority_tall",
    "packed_masked_majority",
    "packed_pair_vote",
    "packed_scatter_columns",
    "packed_unique_rows",
    "pairwise_hamming",
    "popcount",
]
