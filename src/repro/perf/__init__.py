"""Performance core: bit-packed kernels shared by every hot protocol path.

``repro.perf`` hosts representation-level optimisations that are invisible
at the protocol layer: :mod:`repro.perf.bitset` packs binary vectors eight
positions per byte and computes Hamming-shaped reductions as XOR+popcount.
The consumers are the Select distance estimators
(:mod:`repro.protocols.select`), the collective RSelect tournament
(:mod:`repro.protocols.rselect`, via :func:`packed_pair_vote`), the
neighbour graph (:mod:`repro.core.clustering`), and ZeroRadius'
popular-vector extraction (:mod:`repro.protocols.zero_radius`);
``PERFORMANCE.md`` records the measured speedups.  Everything here is
exact — no approximation is introduced, and the property tests assert
bit-for-bit equality with the unpacked references.
"""

from repro.perf.bitset import (
    PackedBits,
    pack_bits,
    packed_hamming,
    packed_majority,
    packed_majority_tall,
    packed_pair_vote,
    packed_unique_rows,
    pairwise_hamming,
    popcount,
)

__all__ = [
    "PackedBits",
    "pack_bits",
    "packed_hamming",
    "packed_majority",
    "packed_majority_tall",
    "packed_pair_vote",
    "packed_unique_rows",
    "pairwise_hamming",
    "popcount",
]
