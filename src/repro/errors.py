"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError`, so a
caller embedding the simulator can catch one base class.  Sub-classes are
grouped by subsystem; they carry enough context (player / object identifiers,
budgets) to debug an experiment without re-running it.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A configuration object is internally inconsistent.

    Raised e.g. when ``n_players`` is not positive, when the dishonest
    fraction exceeds what a protocol tolerates, or when protocol constants are
    out of their documented ranges.
    """


class BudgetExceededError(ReproError):
    """A player attempted to probe beyond its hard probe budget.

    Only raised when the :class:`repro.simulation.oracle.ProbeOracle` is
    constructed with ``enforce_budget=True``; by default budgets are merely
    *measured* (the paper's statements are about probe counts, not about a
    mechanism that cuts players off).
    """

    def __init__(self, player: int, budget: int, attempted: int) -> None:
        self.player = int(player)
        self.budget = int(budget)
        self.attempted = int(attempted)
        super().__init__(
            f"player {player} attempted {attempted} probes, exceeding its "
            f"hard budget of {budget}"
        )


class BoardOwnershipError(ReproError):
    """A player attempted to overwrite a bulletin-board cell it does not own.

    The paper's model (§2) states that a dishonest player cannot modify data
    written by honest players; the board enforces this for *all* players.
    """

    def __init__(self, writer: int, owner: int, key: object) -> None:
        self.writer = int(writer)
        self.owner = int(owner)
        self.key = key
        super().__init__(
            f"player {writer} attempted to overwrite board entry {key!r} "
            f"owned by player {owner}"
        )


class ProtocolError(ReproError):
    """A protocol precondition was violated at run time.

    For example :func:`repro.protocols.zero_radius.zero_radius` being invoked
    with an empty object set, or a clustering step discovering that no player
    meets the degree requirement (which the paper's assumptions rule out).
    """


class LeaderElectionError(ReproError):
    """The leader-election substrate was invoked with an invalid coalition."""


class ExperimentError(ReproError):
    """An experiment driver was asked for an unknown experiment or
    inconsistent sweep parameters."""


class OracleTimeout(ReproError):
    """A probe request timed out in transit.

    This is a *transient* infrastructure fault, not a model-level event: the
    oracle's state (memoisation, charging, noise channel) is untouched, so a
    caller that retries the probe observes exactly what a never-faulted run
    would have observed.  Raised by the deterministic fault-injection layer
    (:mod:`repro.faults`); real deployments would map network timeouts onto
    the same type.
    """

    def __init__(self, site: str = "oracle.probe", occurrence: int = 0) -> None:
        self.site = site
        self.occurrence = int(occurrence)
        super().__init__(
            f"probe request timed out at {site} (call #{occurrence})"
        )


class ConnectionLost(ReproError):
    """The peer on the other side of a serve connection went away.

    Raised by the preference clients when a read or write hits a dead
    socket (``OSError``/EOF) or the stream returns bytes that no longer
    parse as a frame (the torn write of a crashing server).  Carries the
    per-session last-seen event cursors so a caller — or the client's own
    auto-reconnect — can resume each stream exactly where it stopped via
    ``subscribe(from_seq=...)``.

    For an in-flight request the outcome is *unknown*: the op may or may
    not have executed before the connection died.  Idempotent ops are
    retried transparently by the reconnecting clients; mutating ops
    surface this error so the caller decides.
    """

    def __init__(
        self, message: str, last_seen: dict[str, int] | None = None
    ) -> None:
        super().__init__(message)
        #: ``{session: last event seq observed}`` at the moment of loss.
        self.last_seen = dict(last_seen or {})


class InjectedCrash(ReproError):
    """A planned worker crash, simulated in-process.

    The parallel trial engine crashes faulted workers for real
    (``os._exit``); the serial path raises this instead so a single-process
    chaos run exercises the same retry logic without killing the interpreter.
    """
