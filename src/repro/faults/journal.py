"""The trial journal: a crash-safe, append-only record of a sweep.

One JSON record per line.  The first line is a header describing the run
(point count, the trial callable's import path, and the pickled points, so
:func:`repro.analysis.runner.resume_trials` can finish a sweep from the file
alone); every completed point appends a ``result`` record; fault/retry
telemetry appends ``event`` records.  Records are flushed per line, so a
killed process leaves a valid prefix — and the loader tolerates a torn final
line (the write that died mid-flight), which is exactly the property the
resume tests exercise by truncating a journal at every prefix length.

Result records are **results-JSON-compatible**: values pass through the same
scalar coercion :func:`repro.analysis.reporting.write_table_json` applies, so
a journaled scenario row round-trips bit-for-bit (dicts, lists, ints, floats,
strings, booleans, ``None``).  Trials that return non-JSON types (tuples,
arrays) can still run journaled, but their resumed values come back in JSON
form — keep journaled trials on plain rows, as every driver in this repo
does.

Each result record carries a ``key`` — a digest of the point's pickled
arguments — so resuming against the *wrong* points (different seeds, edited
spec) fails loudly instead of silently stitching two different sweeps
together.  Duplicate records for one index are resolved **last-wins**,
mirroring a re-run that appended to an existing file.
"""

from __future__ import annotations

import base64
import errno
import hashlib
import importlib
import json
import os
import pickle
import time
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.errors import ExperimentError
from repro.faults.runtime import disk_fault_gate

__all__ = [
    "AppendOnlyLog",
    "TrialJournal",
    "parse_records",
    "trial_ref",
    "resolve_trial_ref",
    "point_key",
]

_JOURNAL_VERSION = 1


def _json_default(value: Any) -> Any:
    """Coerce numpy scalars (and anything else numeric) for json.dump."""
    if hasattr(value, "item"):
        return value.item()
    return str(value)


def trial_ref(trial: Callable[..., Any]) -> str:
    """``module:qualname`` import path of a trial callable."""
    return f"{getattr(trial, '__module__', '?')}:{getattr(trial, '__qualname__', '?')}"


def resolve_trial_ref(ref: str) -> Callable[..., Any]:
    """Import a trial callable back from its ``module:qualname`` path."""
    module_name, _, qualname = ref.partition(":")
    if not module_name or not qualname:
        raise ExperimentError(f"malformed trial reference {ref!r} in journal header")
    try:
        obj: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError) as error:
        raise ExperimentError(
            f"cannot resolve trial {ref!r} from the journal header; pass the "
            "trial callable to resume_trials explicitly"
        ) from error
    if not callable(obj):
        raise ExperimentError(f"journal trial reference {ref!r} is not callable")
    return obj


def point_key(task: tuple) -> str:
    """Short digest identifying one point's arguments.

    Raw ``pickle.dumps`` is not stable across object *identity* structure:
    the pickler back-references repeated strings/objects by identity, so an
    original task and its unpickled copy (e.g. points reconstructed from a
    journal header) can produce different bytes for equal values.  One
    ``loads(dumps(...))`` round trip is pickle's fixed point — the copy's
    sharing structure is exactly what the pickle encodes — so hashing the
    re-dump of the round-tripped task gives equal keys for equal tasks on
    both sides of a resume.
    """
    canonical = pickle.dumps(pickle.loads(pickle.dumps(task)))
    return hashlib.sha256(canonical).hexdigest()[:16]


def parse_records(text: str) -> list[dict]:
    """Parse journal lines, tolerating a torn (partially written) tail.

    A line that fails to parse marks the truncation point: it and everything
    after it are discarded, so a journal killed mid-append loads as the valid
    prefix it is.  Shared by every append-only log in the repo (trial
    journals here, session op logs in :mod:`repro.serve.durability`).
    """
    records: list[dict] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            break
        if not isinstance(record, dict):
            break
        records.append(record)
    return records


_parse_lines = parse_records


class AppendOnlyLog:
    """A crash-safe append-only JSONL file: one record per line, flushed.

    The write half of the journal contract — every :meth:`append` is
    flushed to the OS before returning, so a killed process leaves a valid
    prefix plus at most one torn line, which :func:`parse_records`
    discards on load.  :class:`TrialJournal` and the serve layer's
    per-session op logs both build on this.
    """

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: Lines flushed to disk by this handle; surfaced as telemetry.
        self.flushes = 0
        self._handle = open(self.path, "a", encoding="utf-8")

    def append(self, record: dict) -> None:
        """Write one record and flush it (the durability point).

        Passes through the ``journal.append`` disk-fault gate: an injected
        ``"error"``/``"enospc"`` raises before any byte lands (the record
        is simply absent), while ``"short-write"`` leaves a torn,
        newline-less prefix on disk before raising — exactly the tail shape
        :func:`parse_records` is built to discard, so a faulted log still
        loads as its valid prefix.
        """
        line = json.dumps(record, separators=(",", ":"), default=_json_default) + "\n"
        action = disk_fault_gate("journal.append")
        if action == "error":
            raise OSError(errno.EIO, f"injected I/O error appending to {self.path}")
        if action == "enospc":
            raise OSError(
                errno.ENOSPC, f"injected ENOSPC appending to {self.path}"
            )
        if action == "short-write":
            self._handle.write(line[: max(1, len(line) // 2)])
            self._handle.flush()
            raise OSError(
                errno.EIO, f"injected short write appending to {self.path}"
            )
        self._handle.write(line)
        self._handle.flush()
        self.flushes += 1

    def fsync(self) -> None:
        """Force the file's bytes to stable storage (a durability barrier).

        Separate from :meth:`append`'s per-line flush — flush hands bytes
        to the OS (enough for a killed *process*), fsync survives a killed
        *machine*.  The serve layer calls this around checkpoint/compaction
        renames.  Passes through the ``journal.fsync`` disk-fault gate.
        """
        if self._handle.closed:
            return
        self._handle.flush()
        action = disk_fault_gate("journal.fsync")
        if action == "error":
            raise OSError(errno.EIO, f"injected fsync failure on {self.path}")
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def __enter__(self) -> "AppendOnlyLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class TrialJournal:
    """Append-only journal for one ``run_trials`` execution.

    Use :meth:`attach` — it creates the file with a header on first use and
    validates + loads completed results when resuming an existing file.
    """

    def __init__(self, path: Path, header: dict, completed: dict[int, Any]) -> None:
        self.path = path
        self.header = header
        self._completed = completed
        self._log = AppendOnlyLog(path)

    @property
    def flushes(self) -> int:
        """Lines flushed to disk by this handle (header + results + events);
        surfaced through the trial engine's ``stats`` as journal telemetry."""
        return self._log.flushes

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def attach(
        cls,
        path: Path | str,
        trial: Callable[..., Any],
        tasks: Sequence[tuple],
    ) -> "TrialJournal":
        """Open (or create) the journal at ``path`` for this run.

        A fresh file gets a header; an existing file is validated against the
        run (point count, per-point argument keys) and its completed results
        are loaded, deduplicated last-wins.
        """
        path = Path(path)
        keys = [point_key(task) for task in tasks]
        if path.exists() and path.stat().st_size > 0:
            records = _parse_lines(path.read_text(encoding="utf-8"))
            if not records or records[0].get("kind") != "header":
                raise ExperimentError(
                    f"journal {path} has no valid header; refusing to resume"
                )
            header = records[0]
            if int(header.get("n_points", -1)) != len(tasks):
                raise ExperimentError(
                    f"journal {path} records {header.get('n_points')} points "
                    f"but this run has {len(tasks)}; refusing to resume"
                )
            completed: dict[int, Any] = {}
            for record in records[1:]:
                if record.get("kind") != "result":
                    continue
                index = int(record["index"])
                if not 0 <= index < len(tasks):
                    raise ExperimentError(
                        f"journal {path} holds result for out-of-range point "
                        f"{index} (run has {len(tasks)} points)"
                    )
                if record.get("key") not in (None, keys[index]):
                    raise ExperimentError(
                        f"journal {path} point {index} was recorded for "
                        "different arguments than this run's — the journal "
                        "belongs to another sweep (seed or spec changed)"
                    )
                # Duplicate records resolve last-wins, like a re-appended run.
                completed[index] = record.get("result")
            return cls(path, header, completed)

        path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "kind": "header",
            "version": _JOURNAL_VERSION,
            "n_points": len(tasks),
            "trial": trial_ref(trial),
            "points": base64.b64encode(pickle.dumps(list(tasks))).decode("ascii"),
            "created_unix_time": time.time(),
        }
        journal = cls(path, header, {})
        journal._append(header)
        return journal

    @staticmethod
    def read_header(path: Path | str) -> dict:
        """Load just the header of an existing journal."""
        path = Path(path)
        if not path.exists():
            raise ExperimentError(f"journal {path} does not exist")
        records = _parse_lines(path.read_text(encoding="utf-8"))
        if not records or records[0].get("kind") != "header":
            raise ExperimentError(f"journal {path} has no valid header")
        return records[0]

    @staticmethod
    def header_points(header: dict) -> list[tuple]:
        """Unpickle the points embedded in a journal header."""
        try:
            return pickle.loads(base64.b64decode(header["points"]))
        except Exception as error:  # noqa: BLE001 - any unpickling failure
            raise ExperimentError(
                "journal header points cannot be reconstructed; pass points "
                "to resume_trials explicitly"
            ) from error

    # ------------------------------------------------------------------
    # Reading / writing
    # ------------------------------------------------------------------
    @property
    def completed(self) -> dict[int, Any]:
        """Results loaded from the file at attach time, keyed by point index."""
        return dict(self._completed)

    def record_result(self, index: int, attempt: int, key: str, result: Any) -> None:
        """Append one completed point (flushed immediately — the checkpoint)."""
        self._append(
            {
                "kind": "result",
                "index": int(index),
                "key": key,
                "attempt": int(attempt),
                "result": result,
            }
        )

    def record_event(self, **fields: Any) -> None:
        """Append one telemetry event (fault fired, retry, pool restart...)."""
        self._append({"kind": "event", **fields})

    def _append(self, record: dict) -> None:
        self._log.append(record)

    def close(self) -> None:
        self._log.close()

    def __enter__(self) -> "TrialJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TrialJournal(path={str(self.path)!r}, "
            f"n_points={self.header.get('n_points')}, "
            f"completed={len(self._completed)})"
        )
