"""Glue between declarative fault requests and the trial engine.

The scenario layer describes chaos declaratively (a ``FaultsSpec`` on the
scenario — "one worker crash, two oracle timeouts"); this module turns such
a request into a concrete :class:`~repro.faults.plan.FaultPlan` for a sweep
of a known size, and formats the engine's telemetry counters into the note
string the results-JSON writer carries.

``plan_from_spec`` is duck-typed on attribute names rather than importing
the scenario vocabulary, so the faults package stays a leaf: the scenario
layer depends on it, never the other way around.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro._typing import SeedLike
from repro.faults.plan import FaultPlan, make_fault_plan

__all__ = ["plan_from_spec", "fault_stats_note", "degraded_payload"]


def plan_from_spec(faults: Any, n_points: int, seed: SeedLike = None) -> FaultPlan:
    """Build a concrete :class:`FaultPlan` from a declarative fault request.

    ``faults`` is any object carrying (a subset of) the count attributes a
    scenario ``FaultsSpec`` declares — ``worker_crashes``,
    ``oracle_timeouts``, ``stalls``/``stall_s``, ``board_duplicates``,
    ``board_drops``.  Missing attributes count as zero.  The same
    ``(faults, n_points, seed)`` triple always yields the same plan.
    """
    return make_fault_plan(
        n_points=n_points,
        seed=seed,
        worker_crashes=int(getattr(faults, "worker_crashes", 0)),
        oracle_timeouts=int(getattr(faults, "oracle_timeouts", 0)),
        stalls=int(getattr(faults, "stalls", 0)),
        stall_s=float(getattr(faults, "stall_s", 1.0)),
        board_duplicates=int(getattr(faults, "board_duplicates", 0)),
        board_drops=int(getattr(faults, "board_drops", 0)),
    )


def fault_stats_note(stats: Mapping[str, int]) -> str:
    """One-line summary of a run's fault telemetry for results-JSON notes.

    E.g. ``"faults: injected=2 retried=3 pool_restarts=1 timeouts=0"``.
    The structured form lives in :func:`fault_metrics`; this compact note is
    kept for human readers of the notes list.
    """
    fields = ("injected", "retried", "pool_restarts", "timeouts")
    body = " ".join(f"{name}={int(stats.get(name, 0))}" for name in fields)
    return f"faults: {body}"


def degraded_payload(row: Mapping[str, Any]) -> dict[str, Any] | None:
    """The degraded-mode event payload for one result row, or ``None``.

    A scenario row marks itself ``degraded`` when churn or faults forced the
    protocol onto its fallback path.  Streaming consumers (the preference
    server's publisher) call this per row: clean rows yield ``None`` (no
    event), degraded rows yield a typed payload naming the trial and the
    degradation evidence so a subscriber can alert without parsing the full
    row.
    """
    if not bool(row.get("degraded", False)):
        return None
    payload: dict[str, Any] = {"degraded": True}
    for key in ("trial", "trial_seed", "scenario", "final_active", "max_error"):
        if key in row:
            payload[key] = row[key]
    return payload


def fault_metrics(stats: Mapping[str, int]) -> dict[str, int]:
    """Structured fault/engine telemetry for the results-JSON ``metrics`` block.

    Carries every :data:`repro.analysis.runner.STAT_KEYS` counter (injected
    faults, retries, pool restarts, timeouts, journal flushes) as plain
    integers, so downstream tooling parses numbers instead of scraping the
    :func:`fault_stats_note` free text.
    """
    fields = ("injected", "retried", "pool_restarts", "timeouts", "journal_flushes")
    return {name: int(stats.get(name, 0)) for name in fields}
