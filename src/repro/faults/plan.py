"""Deterministic fault plans: *what* breaks, *where*, and *when*.

The paper's adversaries corrupt the bulletin board; this module models the
orthogonal *system-level* adversary — crashing workers, timed-out probe
requests, flaky board writes — as data.  A :class:`FaultPlan` is a frozen,
picklable tuple of :class:`PlannedFault` records; every chaos run is exactly
reproducible from ``(plan, seed)`` because nothing about injection depends on
wall clock, scheduling, or worker count:

* each fault names a **site** (``worker.crash``, ``worker.stall``,
  ``oracle.probe``, ``board.post``), the trial **point** it applies to, the
  **attempt** number it fires on (0 = the first execution of that point), and
  for the in-trial sites the **occurrence** — the n-th call of that site
  within the trial;
* the runtime (:mod:`repro.faults.runtime`) counts site calls per trial
  execution, so "the 3rd probe call of point 5's first attempt" is a
  deterministic coordinate no matter which process runs it;
* a retried attempt carries a higher attempt number, so transient faults
  planned at attempt 0 do not re-fire — the retry replays the *clean*
  execution, which is what makes faulted-and-retried runs bit-identical to
  never-faulted runs.

:func:`make_fault_plan` draws a plan's coordinates from a seeded generator,
giving sweeps a one-line way to chaos-test themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._typing import SeedLike, as_generator
from repro.errors import ConfigurationError

__all__ = [
    "DISK_FAULT_SITES",
    "FAULT_SITES",
    "FAULT_ACTIONS",
    "PlannedFault",
    "FaultPlan",
    "make_fault_plan",
]


#: Injection sites the runtime knows how to fire.
FAULT_SITES: tuple[str, ...] = (
    "worker.crash",      # kill the worker process at point start
    "worker.stall",      # sleep at point start (exercises the timeout path)
    "oracle.probe",      # transient OracleTimeout on a ProbeOracle probe call
    "board.post",        # drop or duplicate a BulletinBoard report post
    "journal.append",    # disk fault on an append-only log write
    "journal.fsync",     # fsync failure on a durability barrier
    "checkpoint.write",  # disk fault while persisting a session checkpoint
)

#: Valid actions per site.
FAULT_ACTIONS: dict[str, tuple[str, ...]] = {
    "worker.crash": ("crash",),
    "worker.stall": ("stall",),
    "oracle.probe": ("timeout",),
    "board.post": ("drop", "duplicate"),
    "journal.append": ("error", "enospc", "short-write"),
    "journal.fsync": ("error",),
    "checkpoint.write": ("error", "enospc", "short-write", "corrupt"),
}

#: The disk-layer sites (everything the durability path must degrade
#: gracefully under); used by :func:`make_fault_plan`'s ``disk_faults``.
DISK_FAULT_SITES: tuple[str, ...] = (
    "journal.append",
    "journal.fsync",
    "checkpoint.write",
)


@dataclass(frozen=True)
class PlannedFault:
    """One planned fault occurrence.

    ``point`` is the trial point index the fault applies to; ``attempt`` the
    execution attempt it fires on (retries increment the attempt, so a fault
    at attempt 0 fires once and the retry runs clean); ``occurrence`` the
    n-th call of the site within that execution (only meaningful for the
    in-trial sites — the worker sites fire at point start and ignore it).
    ``param`` carries the stall duration in seconds for ``worker.stall``.
    """

    site: str
    point: int
    attempt: int = 0
    occurrence: int = 0
    action: str = ""
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; known: {FAULT_SITES}"
            )
        action = self.action or FAULT_ACTIONS[self.site][0]
        object.__setattr__(self, "action", action)
        if action not in FAULT_ACTIONS[self.site]:
            raise ConfigurationError(
                f"action {action!r} is not valid for site {self.site!r} "
                f"(valid: {FAULT_ACTIONS[self.site]})"
            )
        if self.point < 0 or self.attempt < 0 or self.occurrence < 0:
            raise ConfigurationError(
                "point, attempt and occurrence must be non-negative in "
                f"{self!r}"
            )
        if self.site == "worker.stall" and self.param <= 0.0:
            raise ConfigurationError("worker.stall faults need param > 0 seconds")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, picklable chaos schedule for one ``run_trials`` call.

    ``faults`` may list several faults on the same coordinates; lookups
    return the first match (later duplicates are ignored).  The plan is pure
    data — the runtime decides what firing means per site.
    """

    faults: tuple[PlannedFault, ...] = ()
    #: Provenance only (the seed :func:`make_fault_plan` drew from).
    seed: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def _index(self) -> dict[tuple[str, int, int, int], PlannedFault]:
        cached = self.__dict__.get("_lookup")
        if cached is None:
            cached = {}
            for fault in self.faults:
                key = (fault.site, fault.point, fault.attempt, fault.occurrence)
                cached.setdefault(key, fault)
            object.__setattr__(self, "_lookup", cached)
        return cached

    def lookup(
        self, site: str, point: int, attempt: int, occurrence: int = 0
    ) -> PlannedFault | None:
        """The fault planned at an exact (site, point, attempt, occurrence)."""
        return self._index().get((site, int(point), int(attempt), int(occurrence)))

    def disrupts(self, point: int, attempt: int) -> bool:
        """Whether this (point, attempt) execution is planned to crash or
        stall its worker — the faults that can break or hang a process pool.

        The trial engine uses this to attribute a pool break: points whose
        current attempt is disruptive consume the fault (their attempt
        advances on resubmission) while innocent in-flight points keep their
        attempt number and therefore their own fault schedule.
        """
        index = self._index()
        return (
            ("worker.crash", int(point), int(attempt), 0) in index
            or ("worker.stall", int(point), int(attempt), 0) in index
        )

    def for_point(self, point: int) -> tuple[PlannedFault, ...]:
        """All faults planned against one trial point, in plan order."""
        return tuple(f for f in self.faults if f.point == int(point))

    @property
    def n_faults(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)


def make_fault_plan(
    n_points: int,
    seed: SeedLike = None,
    worker_crashes: int = 0,
    oracle_timeouts: int = 0,
    stalls: int = 0,
    stall_s: float = 1.0,
    board_duplicates: int = 0,
    board_drops: int = 0,
    disk_faults: int = 0,
    max_occurrence: int = 8,
) -> FaultPlan:
    """Draw a deterministic chaos schedule from a seed.

    Each count places that many faults on points drawn uniformly from
    ``range(n_points)`` (several faults may land on one point); the in-trial
    sites draw their occurrence from ``[0, max_occurrence)`` — small, so the
    fault virtually always fires before a realistic trial finishes its probe
    or post traffic.  All faults are planned at attempt 0: the first
    execution is chaotic, the retry is clean.

    Note the semantic split: crashes, stalls, oracle timeouts and board
    *duplicates* never change results (killed/aborted attempts leave no
    trace; duplicate posts are idempotent on the board), so retried runs are
    bit-identical to clean ones.  Board *drops* silently remove data and are
    the graceful-degradation channel — exclude them from determinism gates.
    ``disk_faults`` draws from the durability sites
    (:data:`DISK_FAULT_SITES`) with a site-appropriate action each; they
    degrade durability (a session falls back to ephemeral, a checkpoint is
    skipped) but never change protocol results.
    """
    if n_points <= 0:
        raise ConfigurationError(f"n_points must be positive, got {n_points}")
    rng = as_generator(seed)
    faults: list[PlannedFault] = []

    def draw_point() -> int:
        return int(rng.integers(0, n_points))

    def draw_occurrence() -> int:
        return int(rng.integers(0, max(1, max_occurrence)))

    for _ in range(worker_crashes):
        faults.append(PlannedFault(site="worker.crash", point=draw_point()))
    for _ in range(stalls):
        faults.append(
            PlannedFault(site="worker.stall", point=draw_point(), param=float(stall_s))
        )
    for _ in range(oracle_timeouts):
        faults.append(
            PlannedFault(
                site="oracle.probe", point=draw_point(), occurrence=draw_occurrence()
            )
        )
    for _ in range(board_duplicates):
        faults.append(
            PlannedFault(
                site="board.post",
                point=draw_point(),
                occurrence=draw_occurrence(),
                action="duplicate",
            )
        )
    for _ in range(board_drops):
        faults.append(
            PlannedFault(
                site="board.post",
                point=draw_point(),
                occurrence=draw_occurrence(),
                action="drop",
            )
        )
    for _ in range(disk_faults):
        # Disk faults target the durability path: draw a site, then one of
        # its actions, both from the same seeded stream as everything else.
        site = DISK_FAULT_SITES[int(rng.integers(0, len(DISK_FAULT_SITES)))]
        actions = FAULT_ACTIONS[site]
        faults.append(
            PlannedFault(
                site=site,
                point=draw_point(),
                occurrence=draw_occurrence(),
                action=actions[int(rng.integers(0, len(actions)))],
            )
        )
    plan_seed = None
    if isinstance(seed, (int, np.integer)):
        plan_seed = int(seed)
    return FaultPlan(faults=tuple(faults), seed=plan_seed)
