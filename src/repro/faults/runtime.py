"""The fault-injection runtime: ambient, countable, zero-cost when idle.

A :class:`FaultInjector` binds one :class:`~repro.faults.plan.FaultPlan` to
one ``(point, attempt)`` execution.  While installed (via :func:`installed`)
it is visible process-wide through a module global, so the chaos-aware
components — :class:`~repro.simulation.oracle.ProbeOracle` probe calls and
:class:`~repro.simulation.board.BulletinBoard` report posts — can consult it
from arbitrarily deep inside a trial without any plumbing through the
protocol layer.  When nothing is installed (the default, and every
non-chaos run) the gates are a single ``is None`` test.

Site calls are counted per execution in deterministic program order, which
is what makes the plan's ``occurrence`` coordinate meaningful: "the 3rd
probe call of attempt 0 of point 5" identifies the same moment in every
process and at every worker count.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.errors import OracleTimeout
from repro.faults.plan import FaultPlan, PlannedFault

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "installed",
    "active_injector",
    "oracle_fault_gate",
    "board_fault_gate",
    "disk_fault_gate",
]


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired (recorded for telemetry/journaling)."""

    site: str
    action: str
    point: int
    attempt: int
    occurrence: int

    def as_record(self) -> dict:
        """Plain-JSON form for the trial journal."""
        return {
            "site": self.site,
            "action": self.action,
            "point": self.point,
            "attempt": self.attempt,
            "occurrence": self.occurrence,
        }


class FaultInjector:
    """Counts site calls for one (point, attempt) execution and fires the
    plan's matching faults."""

    def __init__(self, plan: FaultPlan, point: int, attempt: int) -> None:
        self.plan = plan
        self.point = int(point)
        self.attempt = int(attempt)
        self._counters: dict[str, int] = {}
        self.events: list[FaultEvent] = []

    def record(self, site: str) -> PlannedFault | None:
        """Count one call of ``site``; return the planned fault if one fires."""
        occurrence = self._counters.get(site, 0)
        self._counters[site] = occurrence + 1
        fault = self.plan.lookup(site, self.point, self.attempt, occurrence)
        if fault is not None:
            self.events.append(
                FaultEvent(
                    site=site,
                    action=fault.action,
                    point=self.point,
                    attempt=self.attempt,
                    occurrence=occurrence,
                )
            )
        return fault


#: The installed injector, if any.  Workers are single-threaded, so a plain
#: module global (rather than a contextvar) is sufficient and cheaper.
_ACTIVE: FaultInjector | None = None


def active_injector() -> FaultInjector | None:
    """The currently installed injector (``None`` outside chaos runs)."""
    return _ACTIVE


@contextmanager
def installed(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Install ``injector`` as the ambient fault source for the duration."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous


def oracle_fault_gate() -> None:
    """Called at the head of every ProbeOracle probe method.

    Raises :class:`~repro.errors.OracleTimeout` when the plan schedules a
    timeout at this call — *before* the oracle mutates any state, so a
    retried probe (or a retried trial) observes exactly the clean run.
    """
    injector = _ACTIVE
    if injector is None:
        return
    fault = injector.record("oracle.probe")
    if fault is not None:
        raise OracleTimeout(site="oracle.probe", occurrence=fault.occurrence)


def disk_fault_gate(site: str) -> str | None:
    """Called at the head of a durability-path disk operation.

    ``site`` is one of the disk fault sites (``journal.append``,
    ``journal.fsync``, ``checkpoint.write``).  Returns the planned action —
    ``"error"`` / ``"enospc"`` / ``"short-write"`` / ``"corrupt"`` — or
    ``None`` for a clean write.  The *caller* turns the action into the
    concrete failure (raising :class:`OSError`, truncating the write,
    flipping payload bytes) because only the caller knows what a partial
    write of its record looks like; counting here keeps the occurrence
    coordinate deterministic across every durability layer.
    """
    injector = _ACTIVE
    if injector is None:
        return None
    fault = injector.record(site)
    return fault.action if fault is not None else None


def board_fault_gate() -> str | None:
    """Called at the head of every BulletinBoard report-post method.

    Returns the planned action — ``"drop"`` (the post silently vanishes;
    the graceful-degradation channel) or ``"duplicate"`` (the post is
    applied twice; idempotent by the board's last-wins semantics, so
    bit-identical) — or ``None`` for a normal write.
    """
    injector = _ACTIVE
    if injector is None:
        return None
    fault = injector.record("board.post")
    return fault.action if fault is not None else None
