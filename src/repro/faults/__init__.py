"""Deterministic fault injection and crash-safe sweep infrastructure.

The package splits chaos into four small layers:

* :mod:`~repro.faults.plan` — *what* breaks: picklable
  :class:`~repro.faults.plan.FaultPlan` schedules addressing faults by
  ``(site, point, attempt, occurrence)``;
* :mod:`~repro.faults.runtime` — *how* it fires: the ambient
  :class:`~repro.faults.runtime.FaultInjector` the oracle/board gates
  consult (a single ``is None`` check when no chaos is active);
* :mod:`~repro.faults.journal` — crash-safety: the append-only JSONL
  :class:`~repro.faults.journal.TrialJournal` behind ``run_trials``'s
  ``journal=`` checkpointing and ``resume_trials``;
* :mod:`~repro.faults.chaos` — glue: declarative scenario fault requests
  to concrete plans, and telemetry formatting for results-JSON notes.

The design invariant throughout: transient faults (crashes, stalls, probe
timeouts, duplicate posts) are planned at a specific attempt, fire before
any observable state mutates (or are idempotent), and never re-fire on the
retry — so a faulted-and-retried run is bit-identical to a clean serial
run.  Only ``board.post``/``drop`` faults change results; they feed the
graceful-degradation path instead of the determinism gate.
"""

from repro.faults.chaos import (
    degraded_payload,
    fault_metrics,
    fault_stats_note,
    plan_from_spec,
)
from repro.faults.journal import (
    AppendOnlyLog,
    TrialJournal,
    point_key,
    resolve_trial_ref,
    trial_ref,
)
from repro.faults.plan import (
    DISK_FAULT_SITES,
    FAULT_ACTIONS,
    FAULT_SITES,
    FaultPlan,
    PlannedFault,
    make_fault_plan,
)
from repro.faults.runtime import (
    FaultEvent,
    FaultInjector,
    active_injector,
    board_fault_gate,
    disk_fault_gate,
    installed,
    oracle_fault_gate,
)

__all__ = [
    "AppendOnlyLog",
    "DISK_FAULT_SITES",
    "FAULT_ACTIONS",
    "FAULT_SITES",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "PlannedFault",
    "TrialJournal",
    "active_injector",
    "board_fault_gate",
    "degraded_payload",
    "disk_fault_gate",
    "fault_metrics",
    "fault_stats_note",
    "installed",
    "make_fault_plan",
    "oracle_fault_gate",
    "plan_from_spec",
    "point_key",
    "resolve_trial_ref",
    "trial_ref",
]
