"""RSelect: the randomised candidate-selection tournament (Theorem 3).

Given candidate vectors ``w_1 … w_k``, player ``p`` wants the one closest to
its own (unknown) preference vector.  For every pair of surviving candidates
the player probes a random sample of the objects on which the pair *differs*
and eliminates the candidate that loses a 2/3 majority.  Theorem 3 shows the
survivor is within a constant factor of the best candidate's distance, using
``O(k² log n)`` probes.

Two entry points are provided:

* :func:`rselect` — the per-player tournament exactly as in Figure 1; used
  where each player holds its *own* candidate list (the final step of
  CalculatePreferences and of the robust wrapper).
* :func:`rselect_collective` — runs the tournament for every player over a
  per-player stack of candidates, looping over players but vectorising the
  inner probe comparisons; candidate counts are ``O(log n)`` so the loop is
  cheap relative to the protocol's probing work.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProtocolError
from repro.protocols.context import ProtocolContext

__all__ = ["rselect", "rselect_collective"]


def _pair_vote(
    ctx: ProtocolContext,
    player: int,
    objects: np.ndarray,
    w_a: np.ndarray,
    w_b: np.ndarray,
    sample_size: int,
) -> tuple[int, int]:
    """Probe a sample of the positions where ``w_a`` and ``w_b`` differ.

    Returns ``(agree_a, agree_b)``: how many probed positions agree with each
    candidate.  If the candidates are identical the vote is a (0, 0) tie.
    """
    differing = np.flatnonzero(w_a != w_b)
    if differing.size == 0:
        return 0, 0
    if differing.size > sample_size:
        picked = ctx.randomness.generator.choice(differing, size=sample_size, replace=False)
    else:
        picked = differing
    true_values = ctx.oracle.probe_objects(int(player), objects[picked])
    agree_a = int((true_values == w_a[picked]).sum())
    agree_b = int((true_values == w_b[picked]).sum())
    return agree_a, agree_b


def rselect(
    ctx: ProtocolContext,
    player: int,
    objects: np.ndarray,
    candidates: np.ndarray,
    sample_size: int | None = None,
) -> tuple[int, np.ndarray]:
    """Run RSelect for one player.

    Parameters
    ----------
    ctx:
        Execution context.
    player:
        The player running the tournament (probes are charged to it).
    objects:
        Global object indices the candidate vectors are defined over.
    candidates:
        Array of shape ``(k, len(objects))``.
    sample_size:
        Per-pair sample size; defaults to ``Θ(log n)`` from the constants.

    Returns
    -------
    (index, vector):
        The index of the surviving candidate and the candidate itself.
    """
    objects = np.asarray(objects, dtype=np.int64)
    candidates = np.asarray(candidates, dtype=np.uint8)
    if candidates.ndim != 2 or candidates.shape[1] != objects.size:
        raise ProtocolError(
            f"candidates must have shape (k, {objects.size}), got {candidates.shape}"
        )
    k = candidates.shape[0]
    if k == 0:
        raise ProtocolError("rselect requires at least one candidate")
    if k == 1:
        return 0, candidates[0].copy()
    if sample_size is None:
        sample_size = ctx.constants.rselect_sample_size(ctx.n_players)
    majority = ctx.constants.rselect_majority

    alive = np.ones(k, dtype=bool)
    for a in range(k):
        if not alive[a]:
            continue
        for b in range(a + 1, k):
            if not alive[b] or not alive[a]:
                continue
            agree_a, agree_b = _pair_vote(
                ctx, player, objects, candidates[a], candidates[b], sample_size
            )
            total = agree_a + agree_b
            if total == 0:
                continue
            if agree_a >= majority * total:
                alive[b] = False
            if agree_b >= majority * total:
                alive[a] = False
    survivors = np.flatnonzero(alive)
    if survivors.size == 0:
        # Mutual elimination is possible only on ties right at the threshold;
        # fall back to the first candidate, as "output any vector that
        # remains" presupposes at least one remains.
        survivors = np.asarray([0])
    winner = int(survivors[0])
    return winner, candidates[winner].copy()


def rselect_collective(
    ctx: ProtocolContext,
    players: np.ndarray,
    objects: np.ndarray,
    candidates_per_player: np.ndarray,
    sample_size: int | None = None,
) -> np.ndarray:
    """Run RSelect independently for every listed player.

    ``candidates_per_player`` has shape ``(len(players), k, len(objects))``:
    player ``players[i]`` chooses among ``candidates_per_player[i]``.
    Returns the chosen vectors, shape ``(len(players), len(objects))``.
    """
    players = np.asarray(players, dtype=np.int64)
    candidates_per_player = np.asarray(candidates_per_player, dtype=np.uint8)
    if candidates_per_player.ndim != 3 or candidates_per_player.shape[0] != players.size:
        raise ProtocolError(
            "candidates_per_player must have shape (n_players, k, n_objects); got "
            f"{candidates_per_player.shape}"
        )
    chosen = np.empty((players.size, candidates_per_player.shape[2]), dtype=np.uint8)
    for i, player in enumerate(players):
        _, vector = rselect(
            ctx, int(player), objects, candidates_per_player[i], sample_size=sample_size
        )
        chosen[i] = vector
    return chosen
