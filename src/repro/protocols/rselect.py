"""RSelect: the randomised candidate-selection tournament (Theorem 3).

Given candidate vectors ``w_1 … w_k``, player ``p`` wants the one closest to
its own (unknown) preference vector.  For every pair of surviving candidates
the player probes a random sample of the objects on which the pair *differs*
and eliminates the candidate that loses a 2/3 majority.  Theorem 3 shows the
survivor is within a constant factor of the best candidate's distance, using
``O(k² log n)`` probes.

Two entry points are provided:

* :func:`rselect` — the per-player tournament exactly as in Figure 1; used
  where one player holds its *own* candidate list (the E1 driver) and as the
  serial reference the collective path is property-tested against.
* :func:`rselect_collective` — runs the tournament for every player at once.
  The pair schedule is shared (all players walk the same ``(a, b)`` nested
  order, skipping pairs they already eliminated), so each round vectorises:
  per-player differing positions come from one packed XOR + unpack over the
  candidate stack, every player's sample probes are charged through a single
  :meth:`~repro.simulation.oracle.ProbeOracle.probe_ragged` call, and the
  votes are counted by :func:`repro.perf.packed_pair_vote`.

Randomness contract (the reason the serial and vectorised paths are
bit-identical): ``rselect_collective`` first draws **one 63-bit seed per
player from the shared randomness, in player order** (a single batched
``integers`` call — the documented "player-major" draw), and every player's
tournament consumes only its own derived substream.  Within a tournament,
each pair round whose differing-position count exceeds the sample size
draws **one uniform key per differing position** from the player's
substream and probes the ``sample_size`` smallest-keyed positions in
increasing key order (a weighted-shuffle draw: batchable across players,
unlike ``Generator.choice``).  A player's sequence of draws therefore does
not depend on how the tournaments are interleaved, so running the players
one by one (``vectorised=False``, i.e. ``rselect`` per player) and running
them round-by-round produce the same samples, the same probes and the same
winners — tested bit-for-bit in ``tests/test_tournament_vectorised.py``.

Survivor tie-break: with a majority threshold strictly above 1/2 the alive
set can never empty (each processed pair eliminates at most the loser), but
for threshold ≤ 1/2 — reachable only by bypassing the constants validation —
mutual elimination can kill both members of the final pair.  Both paths then
fall back to the **most recently eliminated** candidate (``a`` of the final
pair, which was killed after ``b``) rather than unconditionally
``candidates[0]``: the last candidate standing in the tournament order is
the one that survived the most comparisons.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProtocolError
from repro.obs.runtime import traced
from repro.perf import pack_bits, packed_pair_vote, popcount
from repro.protocols.context import ProtocolContext

__all__ = ["rselect", "rselect_collective"]


def _player_rngs(ctx: ProtocolContext, n_players: int) -> list[np.random.Generator]:
    """Derive one independent substream per player, in player-major order.

    One batched draw of ``n_players`` 63-bit seeds from the shared
    randomness; both the serial and the vectorised collective paths consume
    exactly this call, so they advance the shared stream identically.
    """
    seeds = ctx.randomness.generator.integers(0, 2**63 - 1, size=n_players)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def _sample_differing(
    differing: np.ndarray, sample_size: int, rng: np.random.Generator
) -> np.ndarray:
    """The documented per-pair sample draw: all differing positions when they
    fit, else the ``sample_size`` smallest of one uniform key per position
    (in increasing key order — ties are measure-zero for doubles)."""
    if differing.size <= sample_size:
        return differing
    keys = rng.random(differing.size)
    smallest = np.argpartition(keys, sample_size - 1)[:sample_size]
    return differing[smallest[np.argsort(keys[smallest])]]


def _pair_vote(
    ctx: ProtocolContext,
    player: int,
    objects: np.ndarray,
    w_a: np.ndarray,
    w_b: np.ndarray,
    sample_size: int,
    rng: np.random.Generator,
) -> tuple[int, int]:
    """Probe a sample of the positions where ``w_a`` and ``w_b`` differ.

    Returns ``(agree_a, agree_b)``: how many probed positions agree with each
    candidate.  If the candidates are identical the vote is a (0, 0) tie.
    """
    differing = np.flatnonzero(w_a != w_b)
    if differing.size == 0:
        return 0, 0
    picked = _sample_differing(differing, sample_size, rng)
    true_values = ctx.oracle.probe_objects(int(player), objects[picked])
    agree_a = int((true_values == w_a[picked]).sum())
    agree_b = int((true_values == w_b[picked]).sum())
    return agree_a, agree_b


@traced("select.tournament")
def rselect(
    ctx: ProtocolContext,
    player: int,
    objects: np.ndarray,
    candidates: np.ndarray,
    sample_size: int | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[int, np.ndarray]:
    """Run RSelect for one player.

    Parameters
    ----------
    ctx:
        Execution context.
    player:
        The player running the tournament (probes are charged to it).
    objects:
        Global object indices the candidate vectors are defined over.
    candidates:
        Array of shape ``(k, len(objects))``.
    sample_size:
        Per-pair sample size; defaults to ``Θ(log n)`` from the constants.
    rng:
        Source of the per-pair sample draws.  Defaults to the shared
        randomness; :func:`rselect_collective` passes each player's derived
        substream instead (see the module docstring's randomness contract).

    Returns
    -------
    (index, vector):
        The index of the surviving candidate and the candidate itself.
    """
    objects = np.asarray(objects, dtype=np.int64)
    candidates = np.asarray(candidates, dtype=np.uint8)
    if candidates.ndim != 2 or candidates.shape[1] != objects.size:
        raise ProtocolError(
            f"candidates must have shape (k, {objects.size}), got {candidates.shape}"
        )
    k = candidates.shape[0]
    if k == 0:
        raise ProtocolError("rselect requires at least one candidate")
    if k == 1:
        return 0, candidates[0].copy()
    sample_size = int(
        sample_size
        if sample_size is not None
        else ctx.constants.rselect_sample_size(ctx.n_players)
    )
    if sample_size <= 0:
        raise ProtocolError(f"sample_size must be positive, got {sample_size}")
    majority = ctx.constants.rselect_majority
    if rng is None:
        rng = ctx.randomness.generator

    alive = np.ones(k, dtype=bool)
    last_eliminated = -1
    for a in range(k):
        if not alive[a]:
            continue
        for b in range(a + 1, k):
            if not alive[b] or not alive[a]:
                continue
            agree_a, agree_b = _pair_vote(
                ctx, player, objects, candidates[a], candidates[b], sample_size, rng
            )
            total = agree_a + agree_b
            if total == 0:
                continue
            if agree_a >= majority * total:
                alive[b] = False
                last_eliminated = b
            if agree_b >= majority * total:
                alive[a] = False
                last_eliminated = a
    survivors = np.flatnonzero(alive)
    if survivors.size == 0:
        # Mutual elimination (threshold ≤ 1/2 only): keep the most recently
        # eliminated candidate — the one that outlived every other.
        survivors = np.asarray([last_eliminated if last_eliminated >= 0 else 0])
    winner = int(survivors[0])
    return winner, candidates[winner].copy()


@traced("select.tournament")
def rselect_collective(
    ctx: ProtocolContext,
    players: np.ndarray,
    objects: np.ndarray,
    candidates_per_player: np.ndarray,
    sample_size: int | None = None,
    vectorised: bool = True,
) -> np.ndarray:
    """Run RSelect independently for every listed player.

    ``candidates_per_player`` has shape ``(len(players), k, len(objects))``:
    player ``players[i]`` chooses among ``candidates_per_player[i]``.
    Returns the chosen vectors, shape ``(len(players), len(objects))``.

    ``vectorised=False`` runs the per-player serial tournaments instead of
    the round-batched collective one; both consume the same player-major
    randomness and are bit-identical (the flag exists for the property tests
    and the E13 microbenchmark, not for callers).
    """
    players = np.asarray(players, dtype=np.int64)
    objects = np.asarray(objects, dtype=np.int64)
    candidates_per_player = np.asarray(candidates_per_player, dtype=np.uint8)
    if (
        candidates_per_player.ndim != 3
        or candidates_per_player.shape[0] != players.size
        or candidates_per_player.shape[2] != objects.size
    ):
        raise ProtocolError(
            "candidates_per_player must have shape (n_players, k, n_objects); got "
            f"{candidates_per_player.shape}"
        )
    n_players, k, n_objects = candidates_per_player.shape
    if k == 0:
        raise ProtocolError("rselect requires at least one candidate")
    if k == 1 or n_players == 0:
        return candidates_per_player[:, 0, :].copy() if k else candidates_per_player
    sample_size = int(
        sample_size
        if sample_size is not None
        else ctx.constants.rselect_sample_size(ctx.n_players)
    )
    if sample_size <= 0:
        raise ProtocolError(f"sample_size must be positive, got {sample_size}")
    rngs = _player_rngs(ctx, n_players)

    if not vectorised:
        chosen = np.empty((n_players, n_objects), dtype=np.uint8)
        for i, player in enumerate(players):
            _, chosen[i] = rselect(
                ctx,
                int(player),
                objects,
                candidates_per_player[i],
                sample_size=sample_size,
                rng=rngs[i],
            )
        return chosen

    majority = ctx.constants.rselect_majority
    packed = pack_bits(candidates_per_player)  # (P, k, n_bytes)
    alive = np.ones((n_players, k), dtype=bool)
    last_eliminated = np.full(n_players, -1, dtype=np.int64)
    for a in range(k):
        for b in range(a + 1, k):
            active = np.flatnonzero(alive[:, a] & alive[:, b])
            if active.size == 0:
                continue
            # Differing positions for every active player at once: XOR the
            # packed candidate rows, then unpack only the XOR (an eighth of
            # two dense != broadcasts).  Flatnonzero of the raveled bits
            # walks row-major, i.e. player-major with ascending positions —
            # the exact order np.flatnonzero yields in the serial path.
            xor = packed.data[active, a, :] ^ packed.data[active, b, :]
            diff_counts = popcount(xor).sum(axis=-1, dtype=np.int64)
            diff_bits = np.unpackbits(xor, axis=-1, count=n_objects)
            flat = np.flatnonzero(diff_bits.view(bool).ravel())
            diff_positions = flat % n_objects
            offsets = np.concatenate(([0], np.cumsum(diff_counts)))

            # Draw the sampling keys player-by-player (each from its own
            # substream, ascending player order), then select every sampled
            # player's smallest keys in one padded argpartition + argsort.
            needs_draw = np.flatnonzero(diff_counts > sample_size)
            selections: np.ndarray | None = None
            if needs_draw.size:
                widths = diff_counts[needs_draw]
                keys = np.full((needs_draw.size, int(widths.max())), np.inf)
                for row, j in enumerate(needs_draw):
                    keys[row, : diff_counts[j]] = rngs[active[j]].random(diff_counts[j])
                smallest = np.argpartition(keys, sample_size - 1, axis=1)[:, :sample_size]
                rows = np.arange(needs_draw.size)[:, None]
                order = np.argsort(keys[rows, smallest], axis=1)
                selections = smallest[rows, order]

            voters: list[int] = []
            picked_lists: list[np.ndarray] = []
            draw_row = 0
            for j, i in enumerate(active):
                differing = diff_positions[offsets[j] : offsets[j + 1]]
                if differing.size == 0:
                    continue  # identical candidates: (0, 0) tie, no draw
                if differing.size > sample_size:
                    picked = differing[selections[draw_row]]
                    draw_row += 1
                else:
                    picked = differing
                voters.append(int(i))
                picked_lists.append(picked)
            if not voters:
                continue
            voter_rows = np.asarray(voters, dtype=np.int64)
            lengths = np.asarray([p.size for p in picked_lists], dtype=np.int64)
            # The oracle answers the whole ragged batch as zero-padded packed
            # rows — the vote kernel's operand shape — so the probed values
            # never pass through a dense block on this side.
            true_packed = ctx.oracle.probe_ragged(
                players[voter_rows], [objects[p] for p in picked_lists], packed=True
            )

            # Candidate rows → zero-padded operands for the packed vote kernel.
            concat_positions = np.concatenate(picked_lists)
            concat_rows = np.repeat(voter_rows, lengths)
            pad_mask = np.arange(int(lengths.max()))[None, :] < lengths[:, None]
            pad_a = np.zeros(pad_mask.shape, dtype=np.uint8)
            pad_b = np.zeros(pad_mask.shape, dtype=np.uint8)
            pad_a[pad_mask] = candidates_per_player[concat_rows, a, concat_positions]
            pad_b[pad_mask] = candidates_per_player[concat_rows, b, concat_positions]
            agree_a, agree_b = packed_pair_vote(true_packed, pad_a, pad_b, lengths)

            # Every sampled position distinguishes the pair, so the vote
            # total is the sample length; eliminations mirror the serial
            # order (b first, then a) so `last_eliminated` ties break alike.
            kill_b = agree_a >= majority * lengths
            kill_a = agree_b >= majority * lengths
            alive[voter_rows[kill_b], b] = False
            last_eliminated[voter_rows[kill_b]] = b
            alive[voter_rows[kill_a], a] = False
            last_eliminated[voter_rows[kill_a]] = a

    any_alive = alive.any(axis=1)
    winner = np.where(
        any_alive,
        alive.argmax(axis=1),
        np.where(last_eliminated >= 0, last_eliminated, 0),
    )
    return candidates_per_player[np.arange(n_players), winner, :].copy()
