"""Select: choose the candidate vector closest to one's own preferences.

The paper uses two variants.  ``RSelect`` (Theorem 3, implemented in
:mod:`repro.protocols.rselect`) is the randomised pairwise-elimination
tournament.  ``Select`` is described as "a deterministic version of RSelect"
used wherever a diameter promise ``D`` is available (SmallRadius steps 2–3).
Its only property the analysis relies on is: *if some candidate is within
distance D of the player's true vector, the output is within O(D)*.

We implement Select as a sampled distance-estimation tournament which has the
same guarantee with high probability (documented as a substitution in
DESIGN.md): the player probes a shared random sample of the objects, computes
its empirical distance to every candidate on the sample, and picks the
argmin.  Because the probed sample is shared, the whole step vectorises
across *all players at once* — this is the hot inner loop of SmallRadius and
of the clustering phase, and the reason the simulator can run hundreds of
players in seconds.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProtocolError
from repro.obs.runtime import traced
from repro.perf import pack_bits, packed_hamming
from repro.protocols.context import ProtocolContext

__all__ = [
    "draw_sample_positions",
    "estimate_distances",
    "select_collective",
    "select_per_player",
]


def draw_sample_positions(
    ctx: ProtocolContext, n_positions: int, sample_size: int
) -> np.ndarray:
    """Positions probed by one collective Select step.

    All of ``range(n_positions)`` when the sample covers it, else a sorted
    without-replacement draw from the shared randomness.  Every collective
    caller — the Select estimators here and the batched SmallRadius
    repetition — must consume exactly this draw, in the same order as the
    step it batches, for the bulk paths to stay bit-identical to their
    per-subset references.
    """
    if sample_size >= n_positions:
        return np.arange(n_positions, dtype=np.int64)
    return np.sort(
        ctx.randomness.generator.choice(n_positions, size=sample_size, replace=False)
    )


@traced("select.estimate")
def estimate_distances(
    ctx: ProtocolContext,
    players: np.ndarray,
    objects: np.ndarray,
    candidates: np.ndarray,
    sample_size: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Estimate each player's Hamming distance to each candidate vector.

    Parameters
    ----------
    ctx:
        Execution context (probes are charged to each player).
    players:
        Players performing the estimate.
    objects:
        Global object indices the candidates are defined over.
    candidates:
        Array of shape ``(n_candidates, len(objects))``.
    sample_size:
        Number of sampled positions each player probes.  The sample is drawn
        from the shared randomness so all players probe the same positions
        (which is what allows the collective/vectorised execution); if
        ``sample_size >= len(objects)`` the estimate is exact.

    Returns
    -------
    (distances, sample_positions):
        ``distances[i, c]`` is the *scaled* estimated Hamming distance of
        player ``players[i]`` to candidate ``c`` over ``objects`` (sample
        disagreement count rescaled by ``len(objects) / sample_size``), and
        ``sample_positions`` are the positions (into ``objects``) probed.
    """
    players = np.asarray(players, dtype=np.int64)
    objects = np.asarray(objects, dtype=np.int64)
    candidates = np.asarray(candidates, dtype=np.uint8)
    if candidates.ndim != 2 or candidates.shape[1] != objects.size:
        raise ProtocolError(
            f"candidates must have shape (k, {objects.size}), got {candidates.shape}"
        )
    if candidates.shape[0] == 0:
        raise ProtocolError("estimate_distances requires at least one candidate")
    if objects.size == 0:
        raise ProtocolError("estimate_distances requires a non-empty object set")
    sample_size = int(sample_size)
    if sample_size <= 0:
        raise ProtocolError(f"sample_size must be positive, got {sample_size}")

    positions = draw_sample_positions(ctx, objects.size, sample_size)
    scale = 1.0 if positions.size == objects.size else objects.size / sample_size

    probed_objects = objects[positions]
    # disagreements[i, c] = number of sampled positions where player i's true
    # value differs from candidate c, computed on the packed representation:
    # (P, 1, s/8) XOR (1, k, s/8) + popcount instead of a (P, k, s) broadcast.
    # The probe block arrives packed straight from the oracle — no dense
    # intermediate, no repack.
    true_packed = ctx.oracle.probe_block(players, probed_objects, packed=True)  # (P, s/8)
    cand_block = candidates[:, positions]  # (k, s)
    cand_packed = pack_bits(cand_block)
    disagreements = packed_hamming(
        true_packed.data[:, None, :], cand_packed.data[None, :, :]
    )
    return disagreements.astype(np.float64) * scale, positions


@traced("select")
def select_collective(
    ctx: ProtocolContext,
    players: np.ndarray,
    objects: np.ndarray,
    candidates: np.ndarray,
    sample_size: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Each player selects the candidate closest to its own preferences.

    Implements the ``Select(V, D)`` building block collectively: every player
    probes the same shared random sample of ``objects`` and outputs the
    candidate with the smallest estimated distance.

    Returns
    -------
    (choice, chosen_vectors):
        ``choice[i]`` is the index (into ``candidates``) chosen by
        ``players[i]``; ``chosen_vectors[i]`` is the corresponding vector
        (shape ``(len(players), len(objects))``).
    """
    players = np.asarray(players, dtype=np.int64)
    candidates = np.asarray(candidates, dtype=np.uint8)
    if sample_size is None:
        sample_size = ctx.constants.rselect_sample_size(ctx.n_players)
    if candidates.shape[0] == 1:
        choice = np.zeros(players.size, dtype=np.int64)
        return choice, np.tile(candidates[0], (players.size, 1))
    distances, _ = estimate_distances(ctx, players, objects, candidates, sample_size)
    choice = distances.argmin(axis=1).astype(np.int64)
    return choice, candidates[choice]


@traced("select")
def select_per_player(
    ctx: ProtocolContext,
    players: np.ndarray,
    objects: np.ndarray,
    candidates_per_player: np.ndarray,
    sample_size: int | None = None,
) -> np.ndarray:
    """Select when each player holds its *own* candidate list.

    ``candidates_per_player`` has shape ``(len(players), k, len(objects))``.
    All players probe the same shared random sample of positions (one probe
    block), then each compares its own candidates on that sample and keeps
    the argmin.  Returns the chosen vectors of shape
    ``(len(players), len(objects))``.
    """
    players = np.asarray(players, dtype=np.int64)
    objects = np.asarray(objects, dtype=np.int64)
    candidates_per_player = np.asarray(candidates_per_player, dtype=np.uint8)
    if (
        candidates_per_player.ndim != 3
        or candidates_per_player.shape[0] != players.size
        or candidates_per_player.shape[2] != objects.size
    ):
        raise ProtocolError(
            "candidates_per_player must have shape "
            f"({players.size}, k, {objects.size}), got {candidates_per_player.shape}"
        )
    k = candidates_per_player.shape[1]
    if k == 0:
        raise ProtocolError("select_per_player requires at least one candidate per player")
    if k == 1:
        return candidates_per_player[:, 0, :].copy()
    if sample_size is None:
        sample_size = ctx.constants.rselect_sample_size(ctx.n_players)
    sample_size = int(sample_size)

    positions = draw_sample_positions(ctx, objects.size, sample_size)
    true_packed = ctx.oracle.probe_block(players, objects[positions], packed=True)  # (P, s/8)
    cand_block = candidates_per_player[:, :, positions]  # (P, k, s)
    cand_packed = pack_bits(cand_block)  # (P, k, s/8)
    disagreements = packed_hamming(
        cand_packed.data, true_packed.data[:, None, :]
    )  # (P, k)
    choice = disagreements.argmin(axis=1)
    return candidates_per_player[np.arange(players.size), choice, :].copy()
