"""ZeroRadius: collaborative scoring when identical-preference clusters exist.

Figure 1 / Theorem 4 of the paper (originally from Awerbuch et al. [4]): if
at least ``n/B'`` players share *exactly* the same preference vector, every
honest player can recover its vector with ``O(B' log n)`` probes.  The
protocol recursively halves both the player set and the object set:

1. base case — when either side is small, every player probes every object;
2. otherwise each half recursively solves its own quadrant, publishes its
   results, and the other half adopts any vector published by sufficiently
   many players (``≥ |P''| / (2B')``), resolving disagreements between
   popular vectors by probing one distinguishing object at a time.

Our implementation is *collective*: one call simulates the recursion for all
players, returning each player's private estimate over the given objects.
Dishonest players participate (their published vectors pass through their
reporting strategies) but their private estimates are irrelevant.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProtocolError
from repro.obs.runtime import traced
from repro.perf import PackedBits, packed_unique_rows
from repro.protocols.context import ProtocolContext

__all__ = ["zero_radius", "popular_vectors"]


def _positions_in(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Index of each element of ``needles`` within ``haystack``.

    ``haystack`` must contain every needle exactly once (the recursion's
    halves are subsets of the call's player/object arrays).
    """
    if haystack.size <= 1 or np.all(haystack[1:] > haystack[:-1]):
        return np.searchsorted(haystack, needles)
    order = np.argsort(haystack, kind="stable")
    return order[np.searchsorted(haystack, needles, sorter=order)]


def popular_vectors(
    published: np.ndarray | PackedBits, min_support: int
) -> np.ndarray:
    """Distinct published rows supported by at least ``min_support`` players.

    ``published`` is the block of published vectors, dense or already packed
    along the object axis (a :class:`PackedBits` straight from
    ``ctx.publish_vectors_packed`` — the packed dataflow skips the repack).
    Returns an array of shape ``(k, n_objects)``; ``k`` may be zero when no
    row reaches the threshold.
    """
    if not isinstance(published, PackedBits):
        published = np.asarray(published, dtype=np.uint8)
        if published.size == 0:
            return np.zeros(
                (0, published.shape[1] if published.ndim == 2 else 0), dtype=np.uint8
            )
    elif 0 in published.shape:
        return np.zeros((0, published.n_bits), dtype=np.uint8)
    # Identical to np.unique(published, axis=0, return_counts=True) — same
    # rows in the same lexicographic order — but sorts packed byte strings.
    uniques, counts = packed_unique_rows(published)
    return uniques[counts >= max(1, int(min_support))]


def _column_majority(vectors: np.ndarray) -> np.ndarray:
    """Column-wise majority of a stack of binary vectors (ties broken to 1)."""
    if vectors.shape[0] == 0:
        raise ProtocolError("cannot take the majority of zero vectors")
    # Callers hold unpacked rows here, so a direct column sum beats packing
    # (repro.perf.packed_majority serves callers that already hold PackedBits).
    sums = vectors.sum(axis=0, dtype=np.int64)
    return (2 * sums >= vectors.shape[0]).astype(np.uint8)


def _resolve_by_probing(
    ctx: ProtocolContext,
    player: int,
    global_objects: np.ndarray,
    candidates: np.ndarray,
) -> np.ndarray:
    """Figure 1, ZeroRadius step 5: probe disputed objects until one candidate
    survives (or until the survivors agree everywhere).

    ``candidates`` has shape ``(k, len(global_objects))`` with ``k ≥ 1``.
    Each probe eliminates every candidate disagreeing with the probed value;
    if that would eliminate all candidates the player keeps the probed value
    for that object and continues with the previous survivor set (its true
    vector is not among the candidates — possible only off the Theorem-4
    promise — so it patches what it can and majority-fills the rest).
    """
    candidates = np.asarray(candidates, dtype=np.uint8)
    k = candidates.shape[0]
    if k == 0:
        raise ProtocolError("_resolve_by_probing requires at least one candidate")
    if k == 1:
        return candidates[0].copy()

    alive = np.ones(k, dtype=bool)
    overrides: dict[int, int] = {}
    while True:
        survivors = candidates[alive]
        if survivors.shape[0] <= 1:
            break
        disputed = np.flatnonzero(np.any(survivors != survivors[0], axis=0))
        disputed = np.asarray(
            [c for c in disputed if int(c) not in overrides], dtype=np.int64
        )
        if disputed.size == 0:
            break
        column = int(disputed[0])
        value = ctx.oracle.probe(int(player), int(global_objects[column]))
        agrees = candidates[:, column] == value
        if np.any(alive & agrees):
            alive &= agrees
        else:
            overrides[column] = int(value)
    result = candidates[alive][0].copy() if np.any(alive) else _column_majority(candidates)
    for column, value in overrides.items():
        result[column] = value
    return result


def _cross_learn(
    ctx: ProtocolContext,
    learners: np.ndarray,
    publishers: np.ndarray,
    objects: np.ndarray,
    publisher_estimates: np.ndarray,
    budget_prime: float,
    channel: str,
) -> np.ndarray:
    """Learners adopt the popular vectors published by the other half.

    Returns estimates of shape ``(len(learners), len(objects))``.
    """
    published = ctx.publish_vectors_packed(
        channel, publishers, objects, publisher_estimates
    )
    min_support = max(
        1,
        int(
            np.floor(
                publishers.size
                / (ctx.constants.zero_radius_popularity_divisor * max(1.0, budget_prime))
            )
        ),
    )
    candidates = popular_vectors(published, min_support)
    if candidates.shape[0] == 0:
        # No vector is popular enough (off-promise input): fall back to every
        # distinct published vector so learners can still resolve by probing.
        candidates, _ = packed_unique_rows(published)
    if candidates.shape[0] == 1:
        # One candidate: every learner adopts it without probing, so the
        # per-learner resolution loop collapses to a single tile.
        return np.tile(candidates[0], (learners.size, 1))
    estimates = np.empty((learners.size, objects.size), dtype=np.uint8)
    for row, learner in enumerate(learners):
        estimates[row] = _resolve_by_probing(ctx, int(learner), objects, candidates)
    return estimates


@traced("zero_radius")
def zero_radius(
    ctx: ProtocolContext,
    players: np.ndarray,
    objects: np.ndarray,
    budget_prime: float,
    channel: str = "zero-radius",
) -> np.ndarray:
    """Run ZeroRadius collectively for ``players`` over ``objects``.

    Parameters
    ----------
    ctx:
        Execution context.
    players:
        Global player indices participating in this call.
    objects:
        Global object indices to be scored.
    budget_prime:
        The bound ``B'`` of Theorem 4 (at least ``|players|/B'`` players are
        promised to share identical preferences for the guarantee to hold).
    channel:
        Bulletin-board channel prefix for this call's published vectors.

    Returns
    -------
    numpy.ndarray
        ``estimates[i, j]`` — player ``players[i]``'s private estimate of its
        preference for ``objects[j]``.
    """
    players = np.asarray(players, dtype=np.int64)
    objects = np.asarray(objects, dtype=np.int64)
    if players.size == 0:
        return np.zeros((0, objects.size), dtype=np.uint8)
    if objects.size == 0:
        return np.zeros((players.size, 0), dtype=np.uint8)
    if budget_prime <= 0:
        raise ProtocolError(f"budget_prime must be positive, got {budget_prime}")

    # Note on channels: every recursion level reuses the same channel names.
    # Posts at different levels concern disjoint (player, object) cells or are
    # same-owner refinements, so reuse is safe — and it keeps the number of
    # bulletin-board channels (each backed by an (n × m) report matrix)
    # constant instead of exponential in the recursion depth.
    base_size = ctx.constants.zero_radius_base_size(ctx.n_players, budget_prime)
    if min(players.size, objects.size) < base_size:
        true_block, _ = ctx.probe_and_report_block(f"{channel}/base", players, objects)
        return true_block

    left_players, right_players = ctx.randomness.partition_in_two(players)
    left_objects, right_objects = ctx.randomness.partition_in_two(objects)

    left_estimates = zero_radius(
        ctx, left_players, left_objects, budget_prime, channel=channel
    )
    right_estimates = zero_radius(
        ctx, right_players, right_objects, budget_prime, channel=channel
    )

    left_on_right = _cross_learn(
        ctx,
        learners=left_players,
        publishers=right_players,
        objects=right_objects,
        publisher_estimates=right_estimates,
        budget_prime=budget_prime,
        channel=f"{channel}/pub",
    )
    right_on_left = _cross_learn(
        ctx,
        learners=right_players,
        publishers=left_players,
        objects=left_objects,
        publisher_estimates=left_estimates,
        budget_prime=budget_prime,
        channel=f"{channel}/pub",
    )

    # Assemble estimates back into the order of ``players`` × ``objects``
    # with vectorised index lookups (the halves are subsets of the inputs).
    estimates = np.empty((players.size, objects.size), dtype=np.uint8)
    left_rows = _positions_in(players, left_players)
    right_rows = _positions_in(players, right_players)
    left_cols = _positions_in(objects, left_objects)
    right_cols = _positions_in(objects, right_objects)

    estimates[left_rows[:, None], left_cols[None, :]] = left_estimates
    estimates[left_rows[:, None], right_cols[None, :]] = left_on_right
    estimates[right_rows[:, None], right_cols[None, :]] = right_estimates
    estimates[right_rows[:, None], left_cols[None, :]] = right_on_left
    return estimates
