"""Building-block protocols from §5 of the paper.

* :func:`repro.protocols.rselect.rselect` — the randomised candidate-selection
  tournament of Theorem 3;
* :func:`repro.protocols.select.select_collective` — the Select procedure
  (candidate choice under a promised diameter bound), implemented as a
  sampling-based distance-estimation tournament and vectorised across all
  players at once;
* :func:`repro.protocols.zero_radius.zero_radius` — the recursive ZeroRadius
  protocol of Theorem 4 (clusters with identical preferences);
* :func:`repro.protocols.small_radius.small_radius` — the SmallRadius protocol
  of Theorem 5 (clusters of diameter ≤ log n).

All of them execute *collectively*: a single call simulates the protocol for
every player, charging probes per player through the shared
:class:`~repro.simulation.oracle.ProbeOracle` and routing published values
through the :class:`~repro.players.base.PlayerPool` so dishonest players lie
exactly where the model allows them to.
"""

from repro.protocols.context import ProtocolContext
from repro.protocols.rselect import rselect, rselect_collective
from repro.protocols.select import estimate_distances, select_collective
from repro.protocols.small_radius import small_radius
from repro.protocols.zero_radius import zero_radius

__all__ = [
    "ProtocolContext",
    "estimate_distances",
    "rselect",
    "rselect_collective",
    "select_collective",
    "small_radius",
    "zero_radius",
]
