"""SmallRadius: collaborative scoring for clusters of small diameter.

Figure 1 / Theorem 5 of the paper (from Alon et al. [2,3]): if every player
belongs to a set of ``≥ n/B`` players whose preference diameter is at most
``D``, each player can compute a vector within ``5D`` of its true preferences
using ``O(B · D^{3/2} (D + log n))`` probes.  The protocol:

1. randomly partitions the objects into ``s = Θ(D^{3/2})`` subsets;
2. runs ZeroRadius on every subset with an inflated budget (``5B``) — within
   a small subset, a diameter-``D`` cluster collapses to near-identical
   preferences often enough for ZeroRadius to produce useful vectors;
3. keeps the vectors output by sufficiently many players (``≥ n/(5B)``) and
   lets every player pick its closest candidate with ``Select``;
4. repeats Θ(log n) times and lets every player ``Select`` among the
   per-repetition concatenated candidates.

The implementation is collective (one call simulates all players) and leans
on the vectorised :func:`repro.protocols.select.select_collective`.  When
nobody lies, each repetition additionally batches every partition subset
that falls into ZeroRadius' base case — *mixed recursion*: the base-case
subsets collapse into one probe+report block over their union, one publish
and one probe block over their Select samples, while the subsets large
enough to recurse still run the full ZeroRadius at their position in the
partition order.  The batched path consumes the shared randomness in
exactly the per-subset order and charges the same probes, so its output is
bit-identical to the plain loop (property-tested).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProtocolError
from repro.obs.runtime import traced
from repro.perf import pack_bits, packed_hamming
from repro.protocols.context import ProtocolContext
from repro.protocols.select import (
    draw_sample_positions,
    select_collective,
    select_per_player,
)
from repro.protocols.zero_radius import popular_vectors, zero_radius

__all__ = ["small_radius"]


def _popular_vectors_blocks(
    published: np.ndarray, widths: np.ndarray, min_support: int
) -> list[np.ndarray]:
    """Per-block :func:`popular_vectors` over contiguous column blocks.

    ``published`` holds the concatenated base-subset columns; block ``i``
    occupies ``widths[i]`` columns.  Returns, per block, exactly
    ``popular_vectors(published[:, block], min_support)`` — same rows, same
    ascending-lexicographic order — but blocks of ≤ 64 bits (the common
    case: base subsets are small by construction) are resolved together:
    each block row becomes one uint64 key (first column most significant, so
    numeric order equals lexicographic row order), one column-wise sort
    orders every block at once, and one run-length pass finds the rows with
    enough support.  Only blocks wider than 64 bits fall back to the
    per-block call.
    """
    n_players, total = published.shape
    widths = np.asarray(widths, dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(widths)))
    min_support = max(1, int(min_support))

    col_block = np.repeat(np.arange(widths.size), widths)
    shifts = widths[col_block] - 1 - (np.arange(total) - offsets[col_block])
    narrow_col = shifts < 64
    weights = np.zeros(total, dtype=np.uint64)
    weights[narrow_col] = np.uint64(1) << shifts[narrow_col].astype(np.uint64)
    keys = np.add.reduceat(
        published.astype(np.uint64) * weights[None, :], offsets[:-1], axis=1
    )
    flat = np.sort(keys, axis=0).T.ravel()  # block-major, sorted within block
    is_start = np.empty(flat.size, dtype=bool)
    is_start[0] = True
    is_start[1:] = flat[1:] != flat[:-1]
    is_start[:: n_players] = True  # runs never cross block boundaries
    starts = np.flatnonzero(is_start)
    counts = np.diff(np.append(starts, flat.size))
    popular_starts = starts[counts >= min_support]
    popular_keys = flat[popular_starts]
    popular_block = popular_starts // n_players
    first = np.searchsorted(popular_block, np.arange(widths.size))
    last = np.searchsorted(popular_block, np.arange(widths.size), side="right")

    blocks: list[np.ndarray] = []
    for index, width in enumerate(widths):
        if width > 64:
            blocks.append(
                popular_vectors(
                    published[:, offsets[index] : offsets[index + 1]], min_support
                )
            )
            continue
        block_keys = popular_keys[first[index] : last[index]]
        bit_shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
        blocks.append(
            ((block_keys[:, None] >> bit_shifts[None, :]) & np.uint64(1)).astype(np.uint8)
        )
    return blocks


@traced("small_radius")
def small_radius(
    ctx: ProtocolContext,
    players: np.ndarray,
    objects: np.ndarray,
    diameter: float,
    budget: int | None = None,
    channel: str = "small-radius",
    batch_base: bool = True,
) -> np.ndarray:
    """Run SmallRadius collectively for ``players`` over ``objects``.

    Parameters
    ----------
    ctx:
        Execution context.
    players:
        Global player indices.
    objects:
        Global object indices to be scored.
    diameter:
        The promised cluster diameter ``D`` (over ``objects``).
    budget:
        The budget ``B``; defaults to ``ctx.budget``.
    channel:
        Bulletin-board channel prefix.
    batch_base:
        Batch the base-case partition subsets of each repetition (the mixed
        recursion described in the module docstring).  Output is
        bit-identical either way; the flag exists so the property tests can
        force the per-subset reference loop.

    Returns
    -------
    numpy.ndarray
        ``estimates[i, j]`` — player ``players[i]``'s estimate of its
        preference for ``objects[j]``.
    """
    players = np.asarray(players, dtype=np.int64)
    objects = np.asarray(objects, dtype=np.int64)
    if players.size == 0 or objects.size == 0:
        return np.zeros((players.size, objects.size), dtype=np.uint8)
    if diameter < 0:
        raise ProtocolError(f"diameter must be non-negative, got {diameter}")
    budget = int(budget if budget is not None else ctx.budget)
    if budget <= 0:
        raise ProtocolError(f"budget must be positive, got {budget}")

    constants = ctx.constants
    repetitions = constants.small_radius_repetitions(ctx.n_players)
    zr_budget = constants.small_radius_budget_multiplier * budget
    min_support = max(
        1,
        int(np.floor(players.size / (constants.small_radius_popularity_divisor * budget))),
    )
    select_sample = constants.rselect_sample_size(ctx.n_players)

    repetition_candidates = np.empty(
        (players.size, repetitions, objects.size), dtype=np.uint8
    )
    object_order = np.argsort(objects, kind="stable")
    sorted_objects = objects[object_order]
    base_size = constants.zero_radius_base_size(ctx.n_players, zr_budget)
    for rep in range(repetitions):
        partitions = ctx.randomness.partition_objects(
            objects, constants.small_radius_partitions(diameter, objects.size)
        )
        partitions = [subset for subset in partitions if subset.size]
        assembled = np.empty((players.size, objects.size), dtype=np.uint8)
        # Mixed recursion: subsets that would hit ZeroRadius' base case (the
        # common regime — the partition count is Θ(D^1.5), so subsets are
        # small) collapse to bulk blocks whenever nobody lies: one
        # probe+report over their union instead of one per subset, and one
        # probe over all their Select samples.  Subsets large enough to
        # recurse still run inline, in partition order, so the shared
        # randomness is consumed exactly as in the per-subset loop and the
        # probes charged are the same — the output is bit-identical
        # (tested).  Dishonest pools take the loop: a strategy may consume
        # its own randomness per reporting call, so merging calls could
        # change what liars post.
        is_base = [min(players.size, subset.size) < base_size for subset in partitions]
        if batch_base and ctx.pool.n_dishonest == 0 and any(is_base):
            _batched_base_repetition(
                ctx,
                players,
                partitions,
                is_base,
                zr_budget,
                object_order,
                sorted_objects,
                min_support,
                select_sample,
                assembled,
                channel,
            )
        else:
            for subset in partitions:
                cols = object_order[np.searchsorted(sorted_objects, subset)]
                # Partitions cover disjoint objects and repetitions re-post
                # over a player's own cells, so a single pair of channels
                # serves every (repetition, partition) — keeping board memory
                # independent of the partition count.
                own_estimates = zero_radius(
                    ctx, players, subset, zr_budget, channel=f"{channel}/zr"
                )
                published = ctx.publish_vectors(
                    f"{channel}/pub", players, subset, own_estimates
                )
                candidates = popular_vectors(published, min_support)
                if candidates.shape[0] == 0:
                    # Off-promise input: no vector has enough support, so each
                    # player keeps its own ZeroRadius estimate for this subset.
                    assembled[:, cols] = own_estimates
                    continue
                _, chosen = select_collective(
                    ctx, players, subset, candidates, sample_size=select_sample
                )
                assembled[:, cols] = chosen
        repetition_candidates[:, rep, :] = assembled

    if repetitions == 1:
        return repetition_candidates[:, 0, :].copy()
    return select_per_player(
        ctx, players, objects, repetition_candidates, sample_size=select_sample
    )


def _batched_base_repetition(
    ctx: ProtocolContext,
    players: np.ndarray,
    partitions: list[np.ndarray],
    is_base: list[bool],
    zr_budget: float,
    object_order: np.ndarray,
    sorted_objects: np.ndarray,
    min_support: int,
    select_sample: int,
    assembled: np.ndarray,
    channel: str,
) -> np.ndarray:
    """One SmallRadius repetition with the base-case subsets batched.

    Performs the same probes, posts and shared-randomness draws as running
    the per-subset loop, but bulks the base group: base-case subsets are
    disjoint, so their dense probe/report blocks concatenate into one call
    up front (a ZeroRadius base case consumes no shared randomness, so
    hoisting it cannot shift any draw), and their per-subset Select sample
    probes concatenate into one more call at the end.  Subsets that recurse
    run the full ZeroRadius *inline at their partition position*, keeping
    every shared-randomness draw — recursion splits and Select samples alike
    — in the per-subset order.  Results are written into ``assembled`` in
    place.
    """
    base_subsets = [subset for subset, base in zip(partitions, is_base) if base]
    merged = np.concatenate(base_subsets)
    # ZeroRadius base case for every base subset at once (same channel the
    # recursive implementation uses for its base blocks).
    true_merged, _ = ctx.probe_and_report_block(f"{channel}/zr/base", players, merged)
    published_merged = ctx.publish_vectors(f"{channel}/pub", players, merged, true_merged)

    widths = np.asarray([subset.size for subset in base_subsets], dtype=np.int64)
    base_candidates = _popular_vectors_blocks(published_merged, widths, min_support)
    offsets = np.concatenate(([0], np.cumsum(widths)))
    # One lookup resolves every base subset's assembled columns; the walk
    # below only slices it (the residual per-subset searchsorted is gone).
    merged_cols = object_order[np.searchsorted(sorted_objects, merged)]
    # Walk the partition in order: resolve each base subset's candidate set
    # and draw its Select sample (deferring the probe), and run each
    # recursive subset in full (the draws must interleave exactly as in the
    # per-subset loop to keep the shared-randomness stream aligned).
    # Resolved base columns/values accumulate and land in one scatter.
    write_cols: list[np.ndarray] = []
    write_vals: list[np.ndarray] = []
    pending: list[tuple[np.ndarray, np.ndarray, np.ndarray, int]] = []
    sampled_objects: list[np.ndarray] = []
    base_index = 0
    for subset, base in zip(partitions, is_base):
        if not base:
            cols = object_order[np.searchsorted(sorted_objects, subset)]
            own_estimates = zero_radius(
                ctx, players, subset, zr_budget, channel=f"{channel}/zr"
            )
            published = ctx.publish_vectors_packed(
                f"{channel}/pub", players, subset, own_estimates
            )
            candidates = popular_vectors(published, min_support)
            if candidates.shape[0] == 0:
                assembled[:, cols] = own_estimates
                continue
            _, chosen = select_collective(
                ctx, players, subset, candidates, sample_size=select_sample
            )
            assembled[:, cols] = chosen
            continue
        block = slice(offsets[base_index], offsets[base_index + 1])
        cols = merged_cols[block]
        candidates = base_candidates[base_index]
        base_index += 1
        if candidates.shape[0] == 0:
            write_cols.append(cols)
            write_vals.append(true_merged[:, block])
            continue
        if candidates.shape[0] == 1:
            # select_collective's single-candidate shortcut: no sample drawn.
            write_cols.append(cols)
            write_vals.append(np.broadcast_to(candidates[0], (players.size, cols.size)))
            continue
        positions = draw_sample_positions(ctx, subset.size, select_sample)
        pending.append((cols, candidates, positions, len(sampled_objects)))
        sampled_objects.append(subset[positions])

    if pending:
        # Final pass: one probe block over every deferred subset's sample,
        # then one packed argmin per distinct candidate count — subsets with
        # the same count stack into a single (S, P, k) kernel call, sample
        # widths zero-padded (pads are zero in both operands, so they add no
        # disagreement and cannot move the argmin or its tie-breaks).
        sample_offsets = np.cumsum([0] + [sample.size for sample in sampled_objects])
        true_samples = ctx.oracle.probe_block(players, np.concatenate(sampled_objects))
        by_count: dict[int, list[int]] = {}
        for index, (_, candidates, _, _) in enumerate(pending):
            by_count.setdefault(candidates.shape[0], []).append(index)
        for n_candidates, indices in by_count.items():
            max_width = max(pending[i][2].size for i in indices)
            true_pad = np.zeros((len(indices), players.size, max_width), dtype=np.uint8)
            cand_pad = np.zeros((len(indices), n_candidates, max_width), dtype=np.uint8)
            for row, i in enumerate(indices):
                _, candidates, positions, sample_index = pending[i]
                sample = slice(sample_offsets[sample_index], sample_offsets[sample_index + 1])
                true_pad[row, :, : positions.size] = true_samples[:, sample]
                cand_pad[row, :, : positions.size] = candidates[:, positions]
            disagreements = packed_hamming(
                pack_bits(true_pad).data[:, :, None, :],
                pack_bits(cand_pad).data[:, None, :, :],
            )  # (S, P, k)
            choices = disagreements.argmin(axis=2)
            for row, i in enumerate(indices):
                cols, candidates, _, _ = pending[i]
                write_cols.append(cols)
                write_vals.append(candidates[choices[row]])
    if write_cols:
        # All base-subset results land in one column scatter instead of one
        # strided write per subset.
        assembled[:, np.concatenate(write_cols)] = np.concatenate(write_vals, axis=1)
    return assembled
