"""SmallRadius: collaborative scoring for clusters of small diameter.

Figure 1 / Theorem 5 of the paper (from Alon et al. [2,3]): if every player
belongs to a set of ``≥ n/B`` players whose preference diameter is at most
``D``, each player can compute a vector within ``5D`` of its true preferences
using ``O(B · D^{3/2} (D + log n))`` probes.  The protocol:

1. randomly partitions the objects into ``s = Θ(D^{3/2})`` subsets;
2. runs ZeroRadius on every subset with an inflated budget (``5B``) — within
   a small subset, a diameter-``D`` cluster collapses to near-identical
   preferences often enough for ZeroRadius to produce useful vectors;
3. keeps the vectors output by sufficiently many players (``≥ n/(5B)``) and
   lets every player pick its closest candidate with ``Select``;
4. repeats Θ(log n) times and lets every player ``Select`` among the
   per-repetition concatenated candidates.

The implementation is collective (one call simulates all players) and leans
on the vectorised :func:`repro.protocols.select.select_collective`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProtocolError
from repro.protocols.context import ProtocolContext
from repro.protocols.select import select_collective, select_per_player
from repro.protocols.zero_radius import popular_vectors, zero_radius

__all__ = ["small_radius"]


def small_radius(
    ctx: ProtocolContext,
    players: np.ndarray,
    objects: np.ndarray,
    diameter: float,
    budget: int | None = None,
    channel: str = "small-radius",
) -> np.ndarray:
    """Run SmallRadius collectively for ``players`` over ``objects``.

    Parameters
    ----------
    ctx:
        Execution context.
    players:
        Global player indices.
    objects:
        Global object indices to be scored.
    diameter:
        The promised cluster diameter ``D`` (over ``objects``).
    budget:
        The budget ``B``; defaults to ``ctx.budget``.
    channel:
        Bulletin-board channel prefix.

    Returns
    -------
    numpy.ndarray
        ``estimates[i, j]`` — player ``players[i]``'s estimate of its
        preference for ``objects[j]``.
    """
    players = np.asarray(players, dtype=np.int64)
    objects = np.asarray(objects, dtype=np.int64)
    if players.size == 0 or objects.size == 0:
        return np.zeros((players.size, objects.size), dtype=np.uint8)
    if diameter < 0:
        raise ProtocolError(f"diameter must be non-negative, got {diameter}")
    budget = int(budget if budget is not None else ctx.budget)
    if budget <= 0:
        raise ProtocolError(f"budget must be positive, got {budget}")

    constants = ctx.constants
    repetitions = constants.small_radius_repetitions(ctx.n_players)
    zr_budget = constants.small_radius_budget_multiplier * budget
    min_support = max(
        1,
        int(np.floor(players.size / (constants.small_radius_popularity_divisor * budget))),
    )
    select_sample = constants.rselect_sample_size(ctx.n_players)

    repetition_candidates = np.empty(
        (players.size, repetitions, objects.size), dtype=np.uint8
    )
    for rep in range(repetitions):
        partitions = ctx.randomness.partition_objects(
            objects, constants.small_radius_partitions(diameter, objects.size)
        )
        assembled = np.empty((players.size, objects.size), dtype=np.uint8)
        object_col = {int(o): j for j, o in enumerate(objects)}
        for part_index, subset in enumerate(partitions):
            if subset.size == 0:
                continue
            cols = np.asarray([object_col[int(o)] for o in subset], dtype=np.int64)
            # Partitions cover disjoint objects and repetitions re-post over a
            # player's own cells, so a single pair of channels serves every
            # (repetition, partition) — keeping board memory independent of
            # the partition count.
            own_estimates = zero_radius(
                ctx, players, subset, zr_budget, channel=f"{channel}/zr"
            )
            published = ctx.publish_vectors(f"{channel}/pub", players, subset, own_estimates)
            candidates = popular_vectors(published, min_support)
            if candidates.shape[0] == 0:
                # Off-promise input: no vector has enough support, so each
                # player keeps its own ZeroRadius estimate for this subset.
                assembled[:, cols] = own_estimates
                continue
            _, chosen = select_collective(
                ctx, players, subset, candidates, sample_size=select_sample
            )
            assembled[:, cols] = chosen
        repetition_candidates[:, rep, :] = assembled

    if repetitions == 1:
        return repetition_candidates[:, 0, :].copy()
    return select_per_player(
        ctx, players, objects, repetition_candidates, sample_size=select_sample
    )
