"""SmallRadius: collaborative scoring for clusters of small diameter.

Figure 1 / Theorem 5 of the paper (from Alon et al. [2,3]): if every player
belongs to a set of ``≥ n/B`` players whose preference diameter is at most
``D``, each player can compute a vector within ``5D`` of its true preferences
using ``O(B · D^{3/2} (D + log n))`` probes.  The protocol:

1. randomly partitions the objects into ``s = Θ(D^{3/2})`` subsets;
2. runs ZeroRadius on every subset with an inflated budget (``5B``) — within
   a small subset, a diameter-``D`` cluster collapses to near-identical
   preferences often enough for ZeroRadius to produce useful vectors;
3. keeps the vectors output by sufficiently many players (``≥ n/(5B)``) and
   lets every player pick its closest candidate with ``Select``;
4. repeats Θ(log n) times and lets every player ``Select`` among the
   per-repetition concatenated candidates.

The implementation is collective (one call simulates all players) and leans
on the vectorised :func:`repro.protocols.select.select_collective`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProtocolError
from repro.perf import pack_bits, packed_hamming
from repro.protocols.context import ProtocolContext
from repro.protocols.select import select_collective, select_per_player
from repro.protocols.zero_radius import popular_vectors, zero_radius

__all__ = ["small_radius"]


def small_radius(
    ctx: ProtocolContext,
    players: np.ndarray,
    objects: np.ndarray,
    diameter: float,
    budget: int | None = None,
    channel: str = "small-radius",
) -> np.ndarray:
    """Run SmallRadius collectively for ``players`` over ``objects``.

    Parameters
    ----------
    ctx:
        Execution context.
    players:
        Global player indices.
    objects:
        Global object indices to be scored.
    diameter:
        The promised cluster diameter ``D`` (over ``objects``).
    budget:
        The budget ``B``; defaults to ``ctx.budget``.
    channel:
        Bulletin-board channel prefix.

    Returns
    -------
    numpy.ndarray
        ``estimates[i, j]`` — player ``players[i]``'s estimate of its
        preference for ``objects[j]``.
    """
    players = np.asarray(players, dtype=np.int64)
    objects = np.asarray(objects, dtype=np.int64)
    if players.size == 0 or objects.size == 0:
        return np.zeros((players.size, objects.size), dtype=np.uint8)
    if diameter < 0:
        raise ProtocolError(f"diameter must be non-negative, got {diameter}")
    budget = int(budget if budget is not None else ctx.budget)
    if budget <= 0:
        raise ProtocolError(f"budget must be positive, got {budget}")

    constants = ctx.constants
    repetitions = constants.small_radius_repetitions(ctx.n_players)
    zr_budget = constants.small_radius_budget_multiplier * budget
    min_support = max(
        1,
        int(np.floor(players.size / (constants.small_radius_popularity_divisor * budget))),
    )
    select_sample = constants.rselect_sample_size(ctx.n_players)

    repetition_candidates = np.empty(
        (players.size, repetitions, objects.size), dtype=np.uint8
    )
    object_order = np.argsort(objects, kind="stable")
    sorted_objects = objects[object_order]
    base_size = constants.zero_radius_base_size(ctx.n_players, zr_budget)
    for rep in range(repetitions):
        partitions = ctx.randomness.partition_objects(
            objects, constants.small_radius_partitions(diameter, objects.size)
        )
        partitions = [subset for subset in partitions if subset.size]
        assembled = np.empty((players.size, objects.size), dtype=np.uint8)
        # When every subset falls into ZeroRadius' base case (the common
        # regime: the partition count is Θ(D^1.5), so subsets are small) and
        # nobody lies, the whole repetition collapses to bulk blocks — one
        # probe+report over the union instead of one per subset, and one
        # probe over all Select samples.  The batched path consumes the
        # shared randomness in the same order and charges the same probes,
        # so its output is bit-identical to the per-subset loop (tested).
        all_base = partitions and (
            min(players.size, max(s.size for s in partitions)) < base_size
        )
        if all_base and ctx.pool.n_dishonest == 0:
            _batched_base_repetition(
                ctx,
                players,
                partitions,
                object_order,
                sorted_objects,
                min_support,
                select_sample,
                assembled,
                channel,
            )
        else:
            for subset in partitions:
                cols = object_order[np.searchsorted(sorted_objects, subset)]
                # Partitions cover disjoint objects and repetitions re-post
                # over a player's own cells, so a single pair of channels
                # serves every (repetition, partition) — keeping board memory
                # independent of the partition count.
                own_estimates = zero_radius(
                    ctx, players, subset, zr_budget, channel=f"{channel}/zr"
                )
                published = ctx.publish_vectors(
                    f"{channel}/pub", players, subset, own_estimates
                )
                candidates = popular_vectors(published, min_support)
                if candidates.shape[0] == 0:
                    # Off-promise input: no vector has enough support, so each
                    # player keeps its own ZeroRadius estimate for this subset.
                    assembled[:, cols] = own_estimates
                    continue
                _, chosen = select_collective(
                    ctx, players, subset, candidates, sample_size=select_sample
                )
                assembled[:, cols] = chosen
        repetition_candidates[:, rep, :] = assembled

    if repetitions == 1:
        return repetition_candidates[:, 0, :].copy()
    return select_per_player(
        ctx, players, objects, repetition_candidates, sample_size=select_sample
    )


def _batched_base_repetition(
    ctx: ProtocolContext,
    players: np.ndarray,
    partitions: list[np.ndarray],
    object_order: np.ndarray,
    sorted_objects: np.ndarray,
    min_support: int,
    select_sample: int,
    assembled: np.ndarray,
    channel: str,
) -> np.ndarray:
    """One SmallRadius repetition where every subset is a ZeroRadius base case.

    Performs the same probes, posts and shared-randomness draws as running
    the per-subset loop, but batched: subsets are disjoint, so their dense
    probe/report blocks concatenate into one call, and the per-subset Select
    sample probes concatenate into one more.  Results are written into
    ``assembled`` in place.
    """
    merged = np.concatenate(partitions)
    # ZeroRadius base case for every subset at once (same channel the
    # recursive implementation uses for its base blocks).
    true_merged, _ = ctx.probe_and_report_block(f"{channel}/zr/base", players, merged)
    published_merged = ctx.publish_vectors(f"{channel}/pub", players, merged, true_merged)

    offsets = np.cumsum([0] + [subset.size for subset in partitions])
    # First pass, in subset order: resolve candidate sets and draw each
    # subset's Select sample (the draws must interleave exactly as in the
    # per-subset loop to keep the shared-randomness stream aligned).
    pending: list[tuple[np.ndarray, np.ndarray, np.ndarray, int]] = []
    sampled_objects: list[np.ndarray] = []
    for index, subset in enumerate(partitions):
        block = slice(offsets[index], offsets[index + 1])
        cols = object_order[np.searchsorted(sorted_objects, subset)]
        candidates = popular_vectors(published_merged[:, block], min_support)
        if candidates.shape[0] == 0:
            assembled[:, cols] = true_merged[:, block]
            continue
        if candidates.shape[0] == 1:
            # select_collective's single-candidate shortcut: no sample drawn.
            assembled[:, cols] = candidates[0]
            continue
        if select_sample >= subset.size:
            positions = np.arange(subset.size, dtype=np.int64)
        else:
            positions = np.sort(
                ctx.randomness.generator.choice(
                    subset.size, size=select_sample, replace=False
                )
            )
        pending.append((cols, candidates, positions, len(sampled_objects)))
        sampled_objects.append(subset[positions])

    if not pending:
        return assembled
    # Second pass: one probe block over every subset's sample, then the
    # packed argmin per subset.
    sample_offsets = np.cumsum([0] + [sample.size for sample in sampled_objects])
    true_samples = ctx.oracle.probe_block(players, np.concatenate(sampled_objects))
    for cols, candidates, positions, sample_index in pending:
        sample = slice(sample_offsets[sample_index], sample_offsets[sample_index + 1])
        true_packed = pack_bits(true_samples[:, sample])
        cand_packed = pack_bits(candidates[:, positions])
        disagreements = packed_hamming(
            true_packed.data[:, None, :], cand_packed.data[None, :, :]
        )
        choice = disagreements.argmin(axis=1)
        assembled[:, cols] = candidates[choice]
    return assembled
