"""Protocol execution context: everything a protocol step needs in one bag.

Every protocol function takes a :class:`ProtocolContext` as its first
argument.  The context bundles the probe oracle (charging probes), the
bulletin board (publishing reports), the player pool (who lies and how), the
shared randomness (honest or leader-biased), the protocol constants, and the
nominal budget ``B``.  Factory helpers build a context from a generated
instance so tests, examples and benchmarks all set up executions the same
way.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro._typing import SeedLike
from repro.errors import ConfigurationError
from repro.perf import PackedBits, pack_bits
from repro.players.base import PlayerPool, ReportingStrategy
from repro.preferences.generators import PlantedInstance
from repro.simulation.board import BulletinBoard
from repro.simulation.config import ProtocolConstants
from repro.simulation.oracle import ProbeOracle
from repro.simulation.randomness import SharedRandomness

__all__ = ["ProtocolContext", "make_context"]


@dataclass
class ProtocolContext:
    """Shared state threaded through every protocol call."""

    oracle: ProbeOracle
    board: BulletinBoard
    pool: PlayerPool
    randomness: SharedRandomness
    constants: ProtocolConstants
    budget: int

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ConfigurationError(f"budget must be positive, got {self.budget}")
        if self.oracle.n_players != self.pool.n_players:
            raise ConfigurationError(
                "oracle and pool disagree on the number of players: "
                f"{self.oracle.n_players} vs {self.pool.n_players}"
            )
        if self.oracle.n_objects != self.pool.n_objects:
            raise ConfigurationError(
                "oracle and pool disagree on the number of objects: "
                f"{self.oracle.n_objects} vs {self.pool.n_objects}"
            )

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def n_players(self) -> int:
        """Number of players."""
        return self.oracle.n_players

    @property
    def n_objects(self) -> int:
        """Number of objects."""
        return self.oracle.n_objects

    def all_players(self) -> np.ndarray:
        """Indices of all players."""
        return np.arange(self.n_players, dtype=np.int64)

    def all_objects(self) -> np.ndarray:
        """Indices of all objects."""
        return np.arange(self.n_objects, dtype=np.int64)

    # ------------------------------------------------------------------
    # Composite operations
    # ------------------------------------------------------------------
    def probe_and_report_block(
        self,
        channel: str,
        players: np.ndarray,
        objects: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Every listed player probes every listed object and posts a report.

        Returns ``(true_block, reported_block)``: the true values each player
        learned (used for each player's *own* estimates) and the values posted
        on the board (what *other* players see — dishonest rows may differ).

        Treat both returned blocks as **read-only**: on a pool with no
        reporting strategies they are the *same* array (reports are the true
        values verbatim, and skipping the copy is part of the packed-dataflow
        fast path), so mutating one would corrupt the other.
        """
        players = np.asarray(players, dtype=np.int64)
        objects = np.asarray(objects, dtype=np.int64)
        true_block = self.oracle.probe_block(players, objects)
        if self.pool.has_strategies:
            reported = self.pool.reports_block(players, objects, true_block)
        else:
            # No strategies installed: reports are the true values verbatim,
            # so the copy-then-rewrite pass is skipped (the board never
            # mutates its input).
            reported = true_block
        self.board.post_report_block(channel, players, objects, reported)
        return true_block, reported

    def publish_vectors(
        self,
        channel: str,
        players: np.ndarray,
        objects: np.ndarray,
        vectors: np.ndarray,
    ) -> np.ndarray:
        """Players publish (claimed) estimate vectors over ``objects``.

        ``vectors[i]`` is player ``players[i]``'s private estimate; the
        published version passes through each dishonest player's strategy
        (an adversary misrepresents its estimates exactly as it misrepresents
        probe results).  Returns the published block — **read-only by
        contract**: on a pool with no reporting strategies it is ``vectors``
        itself (no copy), so a caller must not mutate it.
        """
        players = np.asarray(players, dtype=np.int64)
        objects = np.asarray(objects, dtype=np.int64)
        vectors = np.asarray(vectors, dtype=np.uint8)
        if self.pool.has_strategies:
            published = self.pool.reports_block(players, objects, vectors)
        else:
            published = vectors
        self.board.post_report_block(channel, players, objects, published)
        return published

    def publish_vectors_packed(
        self,
        channel: str,
        players: np.ndarray,
        objects: np.ndarray,
        vectors: np.ndarray,
    ) -> PackedBits:
        """Like :meth:`publish_vectors`, but hands back the published block
        **bit-packed** along the object axis.

        This is the packed-dataflow publish: the downstream consumers of a
        published block — :func:`repro.protocols.zero_radius.popular_vectors`
        and :func:`repro.core.clustering.build_neighbor_graph` — operate on
        packed rows, so returning :class:`PackedBits` lets them skip their
        own pack pass, and the honest fast path never materialises a dense
        copy of the published block at all.
        """
        published = self.publish_vectors(channel, players, objects, vectors)
        return pack_bits(published)

    def with_randomness(self, randomness: SharedRandomness) -> "ProtocolContext":
        """A copy of the context using a different shared-randomness source
        (used by the robust wrapper when a new leader is elected)."""
        return replace(self, randomness=randomness)


def make_context(
    instance: PlantedInstance,
    budget: int,
    constants: ProtocolConstants | None = None,
    strategies: dict[int, ReportingStrategy] | None = None,
    randomness: SharedRandomness | None = None,
    seed: SeedLike = None,
    noise_rate: float = 0.0,
    noise_seed: SeedLike = None,
    probe_limits: int | np.ndarray | None = None,
) -> ProtocolContext:
    """Build a fresh execution context for a generated instance.

    Parameters
    ----------
    instance:
        The generated preference instance (hidden matrix + planted structure).
    budget:
        The nominal probe budget ``B``.
    constants:
        Protocol constants; defaults to the practical profile.
    strategies:
        Dishonest strategies keyed by player index (all-honest by default).
    randomness:
        Shared randomness source; defaults to an honest source seeded from
        ``seed``.
    seed:
        Seed for the default randomness source and the player pool.
    noise_rate / noise_seed:
        Optional noisy-oracle channel (see :class:`ProbeOracle`): each probe
        answer is flipped with probability ``noise_rate``, consistently
        across repeats, with the flip pattern drawn from ``noise_seed``.
    probe_limits:
        Optional **hard** probe cap enforced by the oracle — a scalar for a
        uniform cap or a per-player vector for heterogeneous budgets.  This
        is distinct from the nominal budget ``B`` (a parameter of the
        algorithm): a protocol that exceeds its cap raises
        :class:`~repro.errors.BudgetExceededError` instead of completing.
    """
    constants = constants if constants is not None else ProtocolConstants.practical()
    oracle = ProbeOracle(
        instance.preferences,
        budget=probe_limits,
        enforce_budget=probe_limits is not None,
        noise_rate=noise_rate,
        noise_seed=noise_seed,
    )
    board = BulletinBoard(instance.n_players, instance.n_objects)
    pool = PlayerPool(instance.preferences, strategies=strategies, seed=seed)
    rng = randomness if randomness is not None else SharedRandomness(seed)
    return ProtocolContext(
        oracle=oracle,
        board=board,
        pool=pool,
        randomness=rng,
        constants=constants,
        budget=int(budget),
    )
