"""The honest strategy: report exactly what was probed.

Honest players are the default in :class:`repro.players.base.PlayerPool`
(players without an explicit strategy are treated as honest without any
per-row work), so this class exists mainly so tests and examples can be
explicit about a player's role and so mixed pools can list every player.
"""

from __future__ import annotations

import numpy as np

from repro.players.base import PlayerPool, ReportingStrategy

__all__ = ["HonestStrategy"]


class HonestStrategy(ReportingStrategy):
    """Post the true probe results, unmodified."""

    honest = True

    def report(
        self,
        player: int,
        objects: np.ndarray,
        true_values: np.ndarray,
        pool: PlayerPool,
    ) -> np.ndarray:
        return np.asarray(true_values, dtype=np.uint8).copy()
