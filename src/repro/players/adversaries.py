"""Adversary strategies: the dishonest behaviours the paper worries about.

The model (§2, §7) lets dishonest players collude, know everything, and post
arbitrary values — but they cannot forge other players' posts and their own
probes still cost them probes.  The strategies here implement the concrete
attacks motivated in the introduction and analysed in §7.2:

* :class:`RandomReportStrategy` — the "too busy reviewer" who posts random
  scores instead of reading papers;
* :class:`InvertingStrategy` — posts the complement of the truth (maximally
  misleading about its own cluster membership and about objects);
* :class:`PromotionStrategy` — posts honest values except on a target set of
  objects, which it always scores 1 (the "bias toward colleagues' papers"
  attack) or always 0 (a smear attack);
* :class:`ClusterHijackStrategy` — mimics a victim player's true vector so it
  gets clustered with the victims, then lies on a target object set from
  inside the cluster (the "hijacking" of §7.2);
* :class:`StrangeObjectStrategy` — the vote-flipping attack the Lemma-13
  analysis is about: on objects where the victim cluster is internally split
  ("strange" objects), vote with the minority to flip the majority outcome;
  elsewhere blend in by reporting the cluster consensus;
* :class:`AdaptiveStrategy` — a two-phase attack that the fixed strategies
  above cannot express: report honestly (blend in) until a switch point, then
  turn into one of the other attacks mid-run.  It models a sleeper coalition
  that survives the clustering phase and only lies once its reports carry
  majority weight.

Every strategy constructor accepts a ``seed`` in any
:data:`~repro._typing.SeedLike` form (``int``, ``SeedSequence``,
``numpy.random.Generator`` or ``None``) — strategies that do not randomise
simply ignore it, so coalition builders can thread seeds uniformly.

:func:`build_coalition` wires a coalition of a chosen size and strategy into
the ``strategies`` mapping expected by :class:`~repro.players.base.PlayerPool`,
together with a :class:`CoalitionPlan` describing the attack for use by the
adversarial-randomness hooks.  Coalitions must leave the honest players a
strict majority (the model's standing assumption); violating sizes raise
:class:`~repro.errors.ConfigurationError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro._typing import SeedLike, as_generator
from repro.errors import ConfigurationError
from repro.players.base import PlayerPool, ReportingStrategy

__all__ = [
    "RandomReportStrategy",
    "InvertingStrategy",
    "PromotionStrategy",
    "ClusterHijackStrategy",
    "StrangeObjectStrategy",
    "AdaptiveStrategy",
    "CoalitionPlan",
    "build_coalition",
]


class RandomReportStrategy(ReportingStrategy):
    """Post uniformly random values regardless of the truth."""

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = as_generator(seed)

    def report(
        self,
        player: int,
        objects: np.ndarray,
        true_values: np.ndarray,
        pool: PlayerPool,
    ) -> np.ndarray:
        return self._rng.integers(0, 2, size=objects.size, dtype=np.uint8)


class InvertingStrategy(ReportingStrategy):
    """Post the complement of every true value.

    ``seed`` is accepted for constructor uniformity with the randomised
    strategies but the attack itself is deterministic.
    """

    def __init__(self, seed: SeedLike = None) -> None:
        pass

    def report(
        self,
        player: int,
        objects: np.ndarray,
        true_values: np.ndarray,
        pool: PlayerPool,
    ) -> np.ndarray:
        return (1 - np.asarray(true_values, dtype=np.uint8)).astype(np.uint8)


class PromotionStrategy(ReportingStrategy):
    """Honest everywhere except on ``target_objects``, which always get
    ``promoted_value`` (1 = promote, 0 = smear)."""

    def __init__(
        self,
        target_objects: np.ndarray,
        promoted_value: int = 1,
        seed: SeedLike = None,
    ) -> None:
        self.target_objects = np.asarray(target_objects, dtype=np.int64)
        if promoted_value not in (0, 1):
            raise ConfigurationError(f"promoted_value must be 0 or 1, got {promoted_value}")
        self.promoted_value = int(promoted_value)

    def report(
        self,
        player: int,
        objects: np.ndarray,
        true_values: np.ndarray,
        pool: PlayerPool,
    ) -> np.ndarray:
        reports = np.asarray(true_values, dtype=np.uint8).copy()
        targeted = np.isin(objects, self.target_objects)
        reports[targeted] = self.promoted_value
        return reports


class ClusterHijackStrategy(ReportingStrategy):
    """Mimic a victim player to infiltrate its cluster, lie on target objects.

    The strategy reports the *victim's* true values (full-knowledge adversary)
    on every object except the target set, where it reports the complement of
    the victim's value.  If the protocol clusters by reported similarity the
    hijacker looks like a core member of the victim's cluster while pushing
    wrong values for the targeted objects.
    """

    def __init__(
        self, victim: int, target_objects: np.ndarray, seed: SeedLike = None
    ) -> None:
        self.victim = int(victim)
        self.target_objects = np.asarray(target_objects, dtype=np.int64)

    def report(
        self,
        player: int,
        objects: np.ndarray,
        true_values: np.ndarray,
        pool: PlayerPool,
    ) -> np.ndarray:
        victim_values = pool.truth[self.victim, objects].astype(np.uint8)
        reports = victim_values.copy()
        targeted = np.isin(objects, self.target_objects)
        reports[targeted] = 1 - reports[targeted]
        return reports


class StrangeObjectStrategy(ReportingStrategy):
    """Flip votes on the victim cluster's internally-contested objects.

    For each reported object the strategy looks at the victim cluster's true
    preference split.  On *strange* objects — where the split is close enough
    that Lemma 13 says the adversary might matter — it votes with the current
    minority, trying to flip the majority outcome.  On clear-cut objects it
    votes with the majority so that its reports do not expose it as an
    outlier during clustering.
    """

    def __init__(
        self,
        victim_cluster: np.ndarray,
        strangeness_ratio: float = 5.0,
        seed: SeedLike = None,
    ) -> None:
        self.victim_cluster = np.asarray(victim_cluster, dtype=np.int64)
        if self.victim_cluster.size == 0:
            raise ConfigurationError("victim_cluster must be non-empty")
        if strangeness_ratio <= 1.0:
            raise ConfigurationError(
                f"strangeness_ratio must exceed 1, got {strangeness_ratio}"
            )
        self.strangeness_ratio = float(strangeness_ratio)

    def report(
        self,
        player: int,
        objects: np.ndarray,
        true_values: np.ndarray,
        pool: PlayerPool,
    ) -> np.ndarray:
        cluster_truth = pool.truth[np.ix_(self.victim_cluster, objects)]
        likes = cluster_truth.sum(axis=0).astype(np.int64)
        dislikes = cluster_truth.shape[0] - likes
        majority = (likes >= dislikes).astype(np.uint8)
        minority = (1 - majority).astype(np.uint8)
        bigger = np.maximum(likes, dislikes).astype(np.float64)
        smaller = np.maximum(1, np.minimum(likes, dislikes)).astype(np.float64)
        strange = bigger <= self.strangeness_ratio * smaller
        reports = majority.copy()
        reports[strange] = minority[strange]
        return reports


class AdaptiveStrategy(ReportingStrategy):
    """Blend in honestly, then switch to an attack strategy mid-run.

    The strategy counts the values it has reported so far; until
    ``switch_after`` values it behaves perfectly honestly (so the clustering
    phase sees a core cluster member), after which every report is produced
    by ``attack`` — any other :class:`ReportingStrategy` instance (an
    :class:`InvertingStrategy` by default).

    The switch is per-strategy-instance state, so each coalition member
    flips independently once *its own* reporting volume crosses the
    threshold — roughly "after the sampling/clustering phase" when
    ``switch_after`` is set near the sample size.
    """

    def __init__(
        self,
        switch_after: int,
        attack: ReportingStrategy | None = None,
        seed: SeedLike = None,
    ) -> None:
        if switch_after < 0:
            raise ConfigurationError(
                f"switch_after must be non-negative, got {switch_after}"
            )
        self.switch_after = int(switch_after)
        self.attack = attack if attack is not None else InvertingStrategy(seed=seed)
        self._reported = 0

    def report(
        self,
        player: int,
        objects: np.ndarray,
        true_values: np.ndarray,
        pool: PlayerPool,
    ) -> np.ndarray:
        self._reported += int(np.asarray(objects).size)
        if self._reported <= self.switch_after:
            return np.asarray(true_values, dtype=np.uint8).copy()
        return self.attack.report(player, objects, true_values, pool)


@dataclass(frozen=True)
class CoalitionPlan:
    """Description of a colluding coalition, consumed by experiments.

    ``members`` are the dishonest players; ``victim_cluster`` and
    ``target_objects`` describe what the coalition is attacking (may be empty
    for unfocused strategies); ``hidden_objects`` are objects the coalition
    would like excluded from sample sets when it controls the leader.
    """

    members: np.ndarray
    strategy_name: str
    victim_cluster: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    target_objects: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    hidden_objects: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))


_StrategyName = Literal[
    "random", "invert", "promote", "smear", "hijack", "strange", "adaptive"
]

#: Strategy names :func:`build_coalition` understands.
COALITION_STRATEGIES: tuple[str, ...] = (
    "random", "invert", "promote", "smear", "hijack", "strange", "adaptive"
)


def build_coalition(
    truth: np.ndarray,
    coalition_size: int,
    strategy: _StrategyName,
    victim_cluster: np.ndarray | None = None,
    target_objects: np.ndarray | None = None,
    seed: SeedLike = None,
    exclude: np.ndarray | None = None,
    switch_after: int | None = None,
) -> tuple[dict[int, ReportingStrategy], CoalitionPlan]:
    """Create a coalition of ``coalition_size`` dishonest players.

    Coalition members are drawn from *outside* the victim cluster (the attack
    model is outsiders infiltrating or disrupting a cluster of honest
    players).  Returns the ``strategies`` mapping for
    :class:`~repro.players.base.PlayerPool` plus a :class:`CoalitionPlan`.

    Parameters
    ----------
    truth:
        The hidden preference matrix (used to size index ranges and to pick
        default targets).
    coalition_size:
        Number of dishonest players.  Dishonest players must stay a strict
        minority (``coalition_size < n_players / 2``); larger sizes raise
        :class:`~repro.errors.ConfigurationError` because every guarantee in
        the paper (and the leader election underneath the robust wrapper)
        assumes an honest majority.
    strategy:
        One of ``random``, ``invert``, ``promote``, ``smear``, ``hijack``,
        ``strange``, ``adaptive``.
    victim_cluster:
        Players the coalition targets (required by ``hijack`` / ``strange``;
        defaults to the first ``max(2, n//8)`` players).
    target_objects:
        Objects the coalition wants mis-scored (defaults to a random eighth
        of the objects).
    seed:
        Randomness for member/target selection and randomised strategies; any
        :data:`~repro._typing.SeedLike` (including an existing
        ``numpy.random.Generator``) is accepted.
    exclude:
        Additional players ineligible for membership — used when several
        coalitions coexist in one scenario and must stay disjoint.
    switch_after:
        ``adaptive`` only: reported values before each member turns hostile
        (defaults to the number of objects, i.e. roughly one reporting pass).
    """
    truth = np.asarray(truth)
    n_players, n_objects = truth.shape
    if coalition_size < 0:
        raise ConfigurationError(
            f"coalition_size must be non-negative, got {coalition_size}"
        )
    if 2 * coalition_size >= n_players:
        raise ConfigurationError(
            f"coalition_size={coalition_size} would leave no honest majority at "
            f"n_players={n_players}; the model requires dishonest players to be "
            "a strict minority (coalition_size < n_players / 2)"
        )
    rng = as_generator(seed)

    if victim_cluster is None:
        victim_cluster = np.arange(max(2, n_players // 8), dtype=np.int64)
    else:
        victim_cluster = np.asarray(victim_cluster, dtype=np.int64)
    if target_objects is None:
        target_count = max(1, n_objects // 8)
        target_objects = np.sort(rng.choice(n_objects, size=target_count, replace=False))
    else:
        target_objects = np.asarray(target_objects, dtype=np.int64)

    ineligible = victim_cluster
    if exclude is not None:
        ineligible = np.union1d(ineligible, np.asarray(exclude, dtype=np.int64))
    candidates = np.setdiff1d(np.arange(n_players), ineligible, assume_unique=False)
    if candidates.size < coalition_size:
        raise ConfigurationError(
            "not enough players outside the victim cluster (and exclusions) to "
            f"form the coalition ({candidates.size} available, "
            f"{coalition_size} requested)"
        )
    members = np.sort(rng.choice(candidates, size=coalition_size, replace=False))

    strategies: dict[int, ReportingStrategy] = {}
    hidden_objects = np.zeros(0, dtype=np.int64)
    for member in members:
        member_seed = int(rng.integers(0, 2**63 - 1))
        if strategy == "random":
            strategies[int(member)] = RandomReportStrategy(seed=member_seed)
        elif strategy == "invert":
            strategies[int(member)] = InvertingStrategy(seed=member_seed)
        elif strategy == "promote":
            strategies[int(member)] = PromotionStrategy(
                target_objects, promoted_value=1, seed=member_seed
            )
        elif strategy == "smear":
            strategies[int(member)] = PromotionStrategy(
                target_objects, promoted_value=0, seed=member_seed
            )
        elif strategy == "hijack":
            victim = int(victim_cluster[int(rng.integers(0, victim_cluster.size))])
            strategies[int(member)] = ClusterHijackStrategy(
                victim, target_objects, seed=member_seed
            )
            hidden_objects = target_objects
        elif strategy == "strange":
            strategies[int(member)] = StrangeObjectStrategy(
                victim_cluster, seed=member_seed
            )
            hidden_objects = target_objects
        elif strategy == "adaptive":
            threshold = n_objects if switch_after is None else int(switch_after)
            strategies[int(member)] = AdaptiveStrategy(
                switch_after=threshold,
                attack=StrangeObjectStrategy(victim_cluster, seed=member_seed),
                seed=member_seed,
            )
            hidden_objects = target_objects
        else:
            raise ConfigurationError(f"unknown coalition strategy {strategy!r}")

    plan = CoalitionPlan(
        members=members,
        strategy_name=str(strategy),
        victim_cluster=victim_cluster,
        target_objects=target_objects,
        hidden_objects=hidden_objects,
    )
    return strategies, plan
