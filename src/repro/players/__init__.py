"""Player model: honest players and the adversary strategy library.

In the simulator every protocol step that says "player p posts the result of
its probe" is routed through a :class:`PlayerPool`.  The pool knows which
strategy each player follows: honest players post the truth, dishonest
players post whatever their strategy dictates.  Adversary strategies receive
full knowledge of the hidden matrix and of their coalition — the strongest
adversary the paper's model admits (dishonest players may collude and lie
arbitrarily, they just cannot forge other players' posts or probe for free).
"""

from repro.players.base import PlayerPool, ReportingStrategy
from repro.players.honest import HonestStrategy
from repro.players.adversaries import (
    CoalitionPlan,
    ClusterHijackStrategy,
    InvertingStrategy,
    PromotionStrategy,
    RandomReportStrategy,
    StrangeObjectStrategy,
    build_coalition,
)

__all__ = [
    "ClusterHijackStrategy",
    "CoalitionPlan",
    "HonestStrategy",
    "InvertingStrategy",
    "PlayerPool",
    "PromotionStrategy",
    "RandomReportStrategy",
    "ReportingStrategy",
    "StrangeObjectStrategy",
    "build_coalition",
]
