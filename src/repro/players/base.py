"""Player pool and the reporting-strategy interface.

A *reporting strategy* answers one question: when the protocol asks player
``p`` to publish the results of probing objects ``O``, what values does ``p``
actually post?  Honest players post the truth; dishonest players post
whatever their strategy computes.  The pool applies the right strategy per
player and exposes vectorised bulk paths, because the collective protocol
implementations move blocks of reports at a time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro._typing import PreferenceMatrix, SeedLike, as_generator
from repro.errors import ConfigurationError

__all__ = ["ReportingStrategy", "PlayerPool"]


class ReportingStrategy(ABC):
    """How one player turns true probe results into published reports."""

    #: Whether the strategy is honest (reports the truth verbatim).
    honest: bool = False

    @abstractmethod
    def report(
        self,
        player: int,
        objects: np.ndarray,
        true_values: np.ndarray,
        pool: "PlayerPool",
    ) -> np.ndarray:
        """Values player ``player`` posts for ``objects``.

        ``true_values`` are the results of the player's actual probes (aligned
        with ``objects``).  ``pool`` gives full-knowledge adversaries access
        to the hidden matrix and the coalition.  Must return a binary array
        aligned with ``objects``.
        """


class PlayerPool:
    """Per-player strategies plus the hidden matrix adversaries may inspect.

    Parameters
    ----------
    truth:
        The hidden preference matrix (adversaries in the worst-case model are
        allowed to know it; honest code paths never read it from here).
    strategies:
        Mapping from player index to strategy for every *dishonest* player.
        Unlisted players are honest.
    seed:
        Seed for strategies that randomise their lies.
    """

    def __init__(
        self,
        truth: PreferenceMatrix,
        strategies: dict[int, ReportingStrategy] | None = None,
        seed: SeedLike = None,
    ) -> None:
        truth = np.asarray(truth)
        if truth.ndim != 2:
            raise ConfigurationError(f"truth must be 2-D, got shape {truth.shape}")
        self._truth = truth.astype(np.uint8)
        self.n_players, self.n_objects = truth.shape
        self.rng = as_generator(seed)
        strategies = dict(strategies or {})
        for player, strategy in strategies.items():
            if not 0 <= int(player) < self.n_players:
                raise ConfigurationError(f"strategy assigned to unknown player {player}")
            if not isinstance(strategy, ReportingStrategy):
                raise ConfigurationError(
                    f"strategy for player {player} must be a ReportingStrategy, "
                    f"got {type(strategy).__name__}"
                )
        self._strategies = {int(p): s for p, s in strategies.items()}

    # ------------------------------------------------------------------
    # Composition queries
    # ------------------------------------------------------------------
    @property
    def truth(self) -> PreferenceMatrix:
        """The hidden matrix (adversary knowledge / evaluation only)."""
        return self._truth

    def strategy_of(self, player: int) -> ReportingStrategy | None:
        """The dishonest strategy of ``player``, or ``None`` if honest."""
        return self._strategies.get(int(player))

    @property
    def has_strategies(self) -> bool:
        """Whether *any* player carries a reporting strategy.

        The collective bulk paths use this to skip the copy-then-rewrite
        report pass entirely: with no strategies installed, reports are the
        true values verbatim (an adaptive strategy counts even while it is
        still reporting honestly — it may consume randomness per call).
        """
        return bool(self._strategies)

    @property
    def dishonest_players(self) -> np.ndarray:
        """Sorted indices of dishonest players."""
        dishonest = [
            p for p, s in self._strategies.items() if not s.honest
        ]
        return np.asarray(sorted(dishonest), dtype=np.int64)

    @property
    def honest_mask(self) -> np.ndarray:
        """Boolean mask: ``True`` for honest players."""
        mask = np.ones(self.n_players, dtype=bool)
        mask[self.dishonest_players] = False
        return mask

    @property
    def n_dishonest(self) -> int:
        """Number of dishonest players."""
        return int(self.dishonest_players.size)

    # ------------------------------------------------------------------
    # Report generation
    # ------------------------------------------------------------------
    def reports_for(
        self, player: int, objects: np.ndarray, true_values: np.ndarray
    ) -> np.ndarray:
        """Reports posted by one player for the given objects."""
        objects = np.asarray(objects, dtype=np.int64)
        true_values = np.asarray(true_values, dtype=np.uint8)
        if objects.shape != true_values.shape:
            raise ConfigurationError("objects and true_values must align")
        strategy = self._strategies.get(int(player))
        if strategy is None:
            return true_values.copy()
        reported = np.asarray(
            strategy.report(int(player), objects, true_values, self)
        ).astype(np.uint8)
        if reported.shape != objects.shape:
            raise ConfigurationError(
                f"strategy for player {player} returned reports of shape "
                f"{reported.shape}, expected {objects.shape}"
            )
        if not np.all(np.isin(reported, (0, 1))):
            raise ConfigurationError(
                f"strategy for player {player} returned non-binary reports"
            )
        return reported

    def reports_block(
        self, players: np.ndarray, objects: np.ndarray, true_block: np.ndarray
    ) -> np.ndarray:
        """Reports posted by several players for the same object list.

        ``true_block[i, j]`` is the true probe result of ``players[i]`` on
        ``objects[j]``.  Honest rows pass through untouched (vectorised);
        dishonest rows are rewritten by their strategies.
        """
        players = np.asarray(players, dtype=np.int64)
        objects = np.asarray(objects, dtype=np.int64)
        true_block = np.asarray(true_block, dtype=np.uint8)
        if true_block.shape != (players.size, objects.size):
            raise ConfigurationError(
                f"true_block must have shape {(players.size, objects.size)}, "
                f"got {true_block.shape}"
            )
        reports = true_block.copy()
        if not self._strategies:
            return reports
        for row, player in enumerate(players):
            strategy = self._strategies.get(int(player))
            if strategy is None:
                continue
            reports[row] = self.reports_for(int(player), objects, true_block[row])
        return reports

    def reports_pairs(
        self, players: np.ndarray, objects: np.ndarray, true_values: np.ndarray
    ) -> np.ndarray:
        """Reports for an arbitrary batch of (player, object) pairs.

        Used by the work-sharing phase where each object is probed by a
        different random subset of players.  Honest pairs pass through; the
        pairs of each dishonest player are grouped and rewritten by its
        strategy in one call.
        """
        players = np.asarray(players, dtype=np.int64)
        objects = np.asarray(objects, dtype=np.int64)
        true_values = np.asarray(true_values, dtype=np.uint8)
        if not (players.shape == objects.shape == true_values.shape):
            raise ConfigurationError("players, objects and true_values must align")
        reports = true_values.copy()
        if not self._strategies:
            return reports
        involved = np.intersect1d(np.unique(players), self.dishonest_players)
        for player in involved:
            mask = players == player
            reports[mask] = self.reports_for(int(player), objects[mask], true_values[mask])
        return reports

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PlayerPool(n_players={self.n_players}, n_objects={self.n_objects}, "
            f"n_dishonest={self.n_dishonest})"
        )
